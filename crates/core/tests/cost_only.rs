//! Property tests for the packed cost-only split evaluator: the
//! word-sweep superset counts must price every candidate exactly as the
//! materializing path (`split_by` + a fresh analysis) would, across
//! pattern universes that straddle the 64-bit word boundary, and the
//! engine's bound pruning must never change the selected pivot at any
//! thread count.

use xhc_bits::PatternSet;
use xhc_core::{CorrelationAnalysis, PartitionEngine, SplitStrategy};
use xhc_misr::XCancelConfig;
use xhc_prng::{sample_indices, XhcRng};
use xhc_scan::{CellId, ScanConfig, XMap, XMapBuilder};

/// A seeded random X map with inter-correlated cells (same shape as the
/// equivalence suite's generator).
fn random_xmap(seed: u64, chains: usize, depth: usize, patterns: usize, groups: usize) -> XMap {
    let mut rng = XhcRng::seed_from_u64(seed);
    let cfg = ScanConfig::uniform(chains, depth);
    let mut b = XMapBuilder::new(cfg, patterns);
    let group_sets: Vec<Vec<usize>> = (0..groups)
        .map(|_| {
            let k = 1 + rng.gen_index(patterns / 2);
            sample_indices(&mut rng, patterns, k)
        })
        .collect();
    for chain in 0..chains {
        for pos in 0..depth {
            let cell = CellId::new(chain, pos);
            if rng.gen_bool(0.4) {
                for &p in &group_sets[rng.gen_index(groups)] {
                    b.add_x(cell, p).unwrap();
                }
            } else if rng.gen_bool(0.3) {
                for p in 0..patterns {
                    if rng.gen_bool(0.1) {
                        b.add_x(cell, p).unwrap();
                    }
                }
            }
        }
    }
    b.finish()
}

/// The materializing reference: masked-X total of one child partition,
/// computed from a fresh full analysis.
fn ref_masked(xmap: &XMap, child: &PatternSet) -> usize {
    let analysis = CorrelationAnalysis::analyze(xmap, child);
    analysis.fully_x_cells().len() * child.card()
}

/// The packed path: masked-X totals of both children of splitting `part`
/// on `pivot_cell`, via word sweeps over the bit matrix — exercising the
/// no-zeroing scratch contract by pre-filling the buffers with garbage.
fn packed_masked_pair(
    xmap: &XMap,
    matrix: &xhc_bits::XBitMatrix,
    analysis: &CorrelationAnalysis,
    part: &PatternSet,
    pivot_cell: usize,
    count: usize,
) -> (usize, usize) {
    let stride = matrix.stride();
    let word_ids: Vec<u32> = part
        .as_bits()
        .nonzero_word_indices()
        .map(|w| w as u32)
        .collect();
    let mut a = vec![!0u64; stride];
    let mut b = vec![!0u64; stride];
    let part_words = part.as_bits().as_words();
    let pivot_row = matrix.row(xmap.find_entry(pivot_cell).expect("pivot captures X"));
    for &w in &word_ids {
        let w = w as usize;
        a[w] = part_words[w] & pivot_row[w];
        b[w] = part_words[w] & !pivot_row[w];
    }
    let (na, nb) = matrix.count_supersets_pair(analysis.active_entries(), &word_ids, &a, &b);
    (na * count, nb * (part.card() - count))
}

#[test]
fn packed_evaluation_matches_materializing_reference() {
    // Universes straddling the word boundary are the kernel's edge zone:
    // a 63/65-bit universe leaves a partial tail word, 64 is exact.
    for patterns in [63usize, 64, 65] {
        for seed in 0..4u64 {
            let xmap = random_xmap(seed ^ (patterns as u64) << 8, 6, 10, patterns, 5);
            if xmap.num_x_cells() == 0 {
                continue;
            }
            let matrix = xmap.to_bitmatrix();

            // Check every class representative at the root partition and
            // then again one level down on both children of the first
            // viable split, so non-trivial word masks are exercised.
            let mut frontier = vec![PatternSet::all(patterns)];
            for _level in 0..2 {
                let mut next_frontier = Vec::new();
                for part in &frontier {
                    let analysis = CorrelationAnalysis::analyze(&xmap, part);
                    let card = part.card();
                    let mut checked = 0usize;
                    for (count, cells) in analysis.classes() {
                        if count == 0 || count >= card {
                            continue;
                        }
                        let rep = cells[0];
                        let (packed_w, packed_wo) =
                            packed_masked_pair(&xmap, &matrix, &analysis, part, rep, count);
                        let xset = xmap.xset_linear(rep).expect("rep captures X");
                        let (with, without) = part.split_by(xset);
                        assert_eq!(
                            packed_w,
                            ref_masked(&xmap, &with),
                            "with-child masked mismatch: patterns={patterns} seed={seed}"
                        );
                        assert_eq!(
                            packed_wo,
                            ref_masked(&xmap, &without),
                            "without-child masked mismatch: patterns={patterns} seed={seed}"
                        );
                        if checked == 0 {
                            next_frontier.push(with);
                            next_frontier.push(without);
                        }
                        checked += 1;
                    }
                }
                frontier = next_frontier;
                if frontier.is_empty() {
                    break;
                }
            }
        }
    }
}

/// A scalar (one word at a time, no lanes, no shards) re-implementation
/// of the superset pair count — the semantics the unrolled kernel must
/// reproduce bit-for-bit.
fn scalar_count_pair(
    matrix: &xhc_bits::XBitMatrix,
    row_ids: &[u32],
    word_ids: &[u32],
    a: &[u64],
    b: &[u64],
) -> (usize, usize) {
    let mut na = 0usize;
    let mut nb = 0usize;
    for &r in row_ids {
        let row = matrix.row(r as usize);
        let mut a_sub = true;
        let mut b_sub = true;
        for &w in word_ids {
            let w = w as usize;
            let not_row = !row[w];
            a_sub &= a[w] & not_row == 0;
            b_sub &= b[w] & not_row == 0;
        }
        na += usize::from(a_sub);
        nb += usize::from(b_sub);
    }
    (na, nb)
}

#[test]
fn sharded_and_unrolled_kernels_match_the_scalar_reference() {
    // The full word-boundary sweep from the issue: universes one bit
    // either side of 64 and 256 exercise the lane remainder (stride % 4)
    // at every residue; shard counts {1, 3, 8} × threads {1, 2, 8} pin
    // the band decomposition to the unsharded result.
    for patterns in [63usize, 64, 65, 255, 256, 257] {
        for seed in 0..2u64 {
            let xmap = random_xmap(seed ^ (patterns as u64) << 9, 8, 10, patterns, 5);
            if xmap.num_x_cells() == 0 {
                continue;
            }
            let matrix = xmap.to_bitmatrix();
            let part = PatternSet::all(patterns);
            let analysis = CorrelationAnalysis::analyze(&xmap, &part);
            let card = part.card();
            for (count, cells) in analysis.classes().take(3) {
                if count == 0 || count >= card {
                    continue;
                }
                // Same garbage-scratch setup as the engine: only the
                // partition's nonzero words carry real query bits.
                let word_ids: Vec<u32> = part
                    .as_bits()
                    .nonzero_word_indices()
                    .map(|w| w as u32)
                    .collect();
                let mut a = vec![!0u64; matrix.stride()];
                let mut b = vec![!0u64; matrix.stride()];
                let part_words = part.as_bits().as_words();
                let pivot_row = matrix.row(xmap.find_entry(cells[0]).expect("pivot captures X"));
                for &w in &word_ids {
                    let w = w as usize;
                    a[w] = part_words[w] & pivot_row[w];
                    b[w] = part_words[w] & !pivot_row[w];
                }
                let rows = analysis.active_entries();
                let want = scalar_count_pair(&matrix, rows, &word_ids, &a, &b);
                let unrolled = matrix.count_supersets_pair(rows, &word_ids, &a, &b);
                assert_eq!(
                    unrolled, want,
                    "unrolled vs scalar: patterns={patterns} seed={seed}"
                );
                for shards in [1usize, 3, 8] {
                    for threads in [1usize, 2, 8] {
                        let got = matrix
                            .count_supersets_pair_sharded(rows, &word_ids, &a, &b, shards, threads);
                        assert_eq!(
                            got, want,
                            "sharded vs scalar: patterns={patterns} seed={seed} \
                             shards={shards} threads={threads}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn engine_outcome_is_thread_invariant_when_sharding_engages() {
    // Large enough that the root partition's active-entry list exceeds
    // the engine's minimum shard size (64 rows), so the intra-candidate
    // sharded path really runs at threads > 1; the outcome must stay
    // bit-identical to the single-threaded run.
    for patterns in [255usize, 257] {
        let xmap = random_xmap(0xC0FFEE ^ patterns as u64, 20, 14, patterns, 6);
        let analysis = CorrelationAnalysis::analyze(&xmap, &PatternSet::all(patterns));
        assert!(
            analysis.active_entries().len() >= 128,
            "profile too small to engage sharding: {} active entries",
            analysis.active_entries().len()
        );
        let cancel = XCancelConfig::new(32, 7);
        let run = |threads: usize| {
            PartitionEngine::with_options(
                cancel,
                xhc_core::PlanOptions {
                    strategy: SplitStrategy::BestCost,
                    threads,
                    ..xhc_core::PlanOptions::default()
                },
            )
            .run(&xmap)
        };
        let want = run(1);
        assert!(!want.rounds.is_empty(), "degenerate profile never splits");
        for threads in [2usize, 8] {
            let got = run(threads);
            assert_eq!(got, want, "patterns={patterns} threads={threads}");
        }
    }
}

/// An unpruned, sequential reference for the BestCost selection rule:
/// every candidate is materialised and priced, and the first strict
/// minimum in candidate order wins — the semantics the engine's pruned,
/// parallel search must reproduce exactly.
fn ref_best_cost_rounds(xmap: &XMap, cancel: XCancelConfig) -> (Vec<usize>, Vec<PatternSet>) {
    let num_patterns = xmap.num_patterns();
    let word_bits = xmap.config().mask_word_bits() as f64;
    let total_x = xmap.total_x();
    let cost_of = |parts: &[PatternSet]| -> f64 {
        let masked: usize = parts.iter().map(|p| ref_masked(xmap, p)).sum();
        word_bits * parts.len() as f64 + cancel.control_bits(total_x - masked)
    };
    let mut parts = vec![PatternSet::all(num_patterns)];
    let mut cost = cost_of(&parts);
    let mut pivots = Vec::new();
    loop {
        let mut best: Option<(usize, usize, f64)> = None;
        for (pi, part) in parts.iter().enumerate() {
            let analysis = CorrelationAnalysis::analyze(xmap, part);
            let card = part.card();
            for (count, cells) in analysis.classes() {
                if count == 0 || count >= card {
                    continue;
                }
                let rep = cells[0];
                let xset = xmap.xset_linear(rep).expect("rep captures X");
                let (with, without) = part.split_by(xset);
                let mut next = parts.clone();
                next[pi] = with;
                next.insert(pi + 1, without);
                let c = cost_of(&next);
                if best.is_none_or(|(_, _, bc)| c < bc) {
                    best = Some((pi, rep, c));
                }
            }
        }
        let Some((pi, rep, next_cost)) = best else {
            break;
        };
        if next_cost >= cost {
            break;
        }
        let xset = xmap.xset_linear(rep).expect("rep captures X");
        let (with, without) = parts[pi].split_by(xset);
        parts[pi] = with;
        parts.insert(pi + 1, without);
        cost = next_cost;
        pivots.push(rep);
    }
    (pivots, parts)
}

#[test]
fn pruning_never_changes_the_selected_pivot() {
    for patterns in [63usize, 64, 65] {
        for seed in 0..3u64 {
            let xmap = random_xmap(seed.wrapping_mul(97) ^ patterns as u64, 5, 9, patterns, 4);
            let cancel = XCancelConfig::new(24, 4);
            let (want_pivots, want_parts) = ref_best_cost_rounds(&xmap, cancel);
            for threads in [1usize, 2, 8] {
                let got = PartitionEngine::with_options(
                    cancel,
                    xhc_core::PlanOptions {
                        strategy: SplitStrategy::BestCost,
                        threads,
                        ..xhc_core::PlanOptions::default()
                    },
                )
                .run(&xmap);
                let got_pivots: Vec<usize> = got.rounds.iter().map(|r| r.pivot_cell).collect();
                assert_eq!(
                    got_pivots, want_pivots,
                    "pivot sequence diverged: patterns={patterns} seed={seed} threads={threads}"
                );
                assert_eq!(
                    got.partitions, want_parts,
                    "partitions diverged: patterns={patterns} seed={seed} threads={threads}"
                );
            }
        }
    }
}
