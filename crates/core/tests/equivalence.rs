//! Equivalence suite: the flat/delta correlation kernel and the parallel
//! partition engine must produce outcomes identical to a straightforward
//! reference implementation of the paper's algorithm (the pre-optimization
//! engine: `BTreeMap` class analysis, full re-analysis per candidate), and
//! identical to themselves at every thread count.

use std::collections::BTreeMap;
use xhc_bits::PatternSet;
use xhc_core::{
    CellSelection, CorrelationAnalysis, PartitionEngine, PartitionOutcome, PlanOptions,
    SplitStrategy,
};
use xhc_misr::XCancelConfig;
use xhc_prng::{sample_indices, SliceRandom, XhcRng};
use xhc_scan::{CellId, ScanConfig, XMap, XMapBuilder};

/// A seeded random X map with inter-correlated cells: a pool of group
/// pattern sets, each correlated cell copying one of them, plus a sprinkle
/// of independent noise cells.
fn random_xmap(seed: u64, chains: usize, depth: usize, patterns: usize, groups: usize) -> XMap {
    let mut rng = XhcRng::seed_from_u64(seed);
    let cfg = ScanConfig::uniform(chains, depth);
    let mut b = XMapBuilder::new(cfg, patterns);
    let group_sets: Vec<Vec<usize>> = (0..groups)
        .map(|_| {
            let k = 1 + rng.gen_index(patterns / 2);
            sample_indices(&mut rng, patterns, k)
        })
        .collect();
    for chain in 0..chains {
        for pos in 0..depth {
            let cell = CellId::new(chain, pos);
            if rng.gen_bool(0.4) {
                for &p in &group_sets[rng.gen_index(groups)] {
                    b.add_x(cell, p).unwrap();
                }
            } else if rng.gen_bool(0.3) {
                for p in 0..patterns {
                    if rng.gen_bool(0.1) {
                        b.add_x(cell, p).unwrap();
                    }
                }
            }
        }
    }
    b.finish()
}

// ---------------------------------------------------------------------------
// Reference implementation (the seed engine, simplified but semantically
// exact: tree-map analysis, full re-analysis of every candidate split).
// ---------------------------------------------------------------------------

struct RefAnalysis {
    /// count -> cells (ascending), counts ascending via BTreeMap.
    classes: BTreeMap<usize, Vec<usize>>,
    partition_card: usize,
}

fn ref_analyze(xmap: &XMap, part: &PatternSet) -> RefAnalysis {
    let mut classes: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (cell, xs) in xmap.iter() {
        let c = xs.intersection_card(part);
        if c > 0 {
            classes
                .entry(c)
                .or_default()
                .push(xmap.config().linear_index(cell));
        }
    }
    RefAnalysis {
        classes,
        partition_card: part.card(),
    }
}

impl RefAnalysis {
    fn masked_x(&self) -> usize {
        if self.partition_card == 0 {
            return 0;
        }
        self.classes
            .get(&self.partition_card)
            .map_or(0, |cells| cells.len() * self.partition_card)
    }

    fn pivot_class(&self) -> Option<(usize, &[usize])> {
        self.classes
            .iter()
            .filter(|&(&count, cells)| count < self.partition_card && cells.len() >= 2)
            .max_by_key(|&(&count, cells)| (cells.len(), count))
            .map(|(&count, cells)| (count, cells.as_slice()))
    }

    fn class_reps(&self) -> Vec<(usize, usize, usize)> {
        self.classes
            .iter()
            .filter(|&(&count, _)| count > 0 && count < self.partition_card)
            .map(|(&count, cells)| (count, cells[0], cells.len()))
            .collect()
    }
}

struct RefRound {
    split_partition: usize,
    pivot_cell: usize,
    class_count: usize,
    class_size: usize,
    cost_after: f64,
}

struct RefOutcome {
    partitions: Vec<PatternSet>,
    rounds: Vec<RefRound>,
    cost: f64,
}

fn ref_cost(xmap: &XMap, parts: &[PatternSet], cancel: XCancelConfig) -> f64 {
    let masked: usize = parts.iter().map(|p| ref_analyze(xmap, p).masked_x()).sum();
    let leaked = xmap.total_x() - masked;
    let masking = xmap.config().mask_word_bits() as u128 * parts.len() as u128;
    masking as f64 + cancel.control_bits(leaked)
}

fn ref_run(
    xmap: &XMap,
    cancel: XCancelConfig,
    strategy: SplitStrategy,
    policy: CellSelection,
) -> RefOutcome {
    let num_patterns = xmap.num_patterns();
    let mut rng = match policy {
        CellSelection::Seeded(seed) => Some(XhcRng::seed_from_u64(seed)),
        _ => None,
    };
    let mut parts = vec![PatternSet::all(num_patterns)];
    let mut cost = ref_cost(xmap, &parts, cancel);
    let mut rounds = Vec::new();

    loop {
        let analyses: Vec<RefAnalysis> = parts.iter().map(|p| ref_analyze(xmap, p)).collect();
        let try_split = |pi: usize, pivot: usize| -> (Vec<PatternSet>, f64) {
            let xset = xmap
                .xset(xmap.config().cell_at(pivot))
                .expect("pivot captures X");
            let (with_x, without_x) = parts[pi].split_by(xset);
            let mut next = parts.clone();
            next[pi] = with_x;
            next.insert(pi + 1, without_x);
            let c = ref_cost(xmap, &next, cancel);
            (next, c)
        };

        let chosen = match strategy {
            SplitStrategy::LargestClass => {
                let Some((pi, class_size, class_count)) = analyses
                    .iter()
                    .enumerate()
                    .filter_map(|(i, a)| a.pivot_class().map(|(c, cells)| (i, cells.len(), c)))
                    .max_by(|a, b| {
                        (a.1, a.2, std::cmp::Reverse(a.0)).cmp(&(b.1, b.2, std::cmp::Reverse(b.0)))
                    })
                else {
                    break;
                };
                let (_, cells) = analyses[pi].pivot_class().expect("present");
                let pivot = match policy {
                    CellSelection::First => cells[0],
                    CellSelection::Seeded(_) => {
                        *cells.choose(rng.as_mut().expect("rng")).expect("non-empty")
                    }
                    CellSelection::GlobalMaxX => cells
                        .iter()
                        .copied()
                        .max_by_key(|&c| xmap.x_count(xmap.config().cell_at(c)))
                        .expect("non-empty"),
                };
                let (next, c) = try_split(pi, pivot);
                Some((pi, pivot, class_count, class_size, next, c))
            }
            SplitStrategy::BestCost => {
                let mut best: Option<(usize, usize, usize, usize, Vec<PatternSet>, f64)> = None;
                for (pi, a) in analyses.iter().enumerate() {
                    for (count, rep, size) in a.class_reps() {
                        let (next, c) = try_split(pi, rep);
                        if best.as_ref().is_none_or(|b| c < b.5) {
                            best = Some((pi, rep, count, size, next, c));
                        }
                    }
                }
                best
            }
        };
        let Some((pi, pivot, class_count, class_size, next, next_cost)) = chosen else {
            break;
        };
        if next_cost >= cost {
            break;
        }
        rounds.push(RefRound {
            split_partition: pi,
            pivot_cell: pivot,
            class_count,
            class_size,
            cost_after: next_cost,
        });
        parts = next;
        cost = next_cost;
    }

    RefOutcome {
        partitions: parts,
        rounds,
        cost,
    }
}

fn assert_matches_reference(got: &PartitionOutcome, want: &RefOutcome) {
    assert_eq!(
        got.partitions, want.partitions,
        "partition sequence differs"
    );
    assert_eq!(got.rounds.len(), want.rounds.len(), "round count differs");
    for (g, w) in got.rounds.iter().zip(&want.rounds) {
        assert_eq!(g.split_partition, w.split_partition);
        assert_eq!(g.pivot_cell, w.pivot_cell);
        assert_eq!(g.class_count, w.class_count);
        assert_eq!(g.class_size, w.class_size);
        assert!(
            (g.cost_after.total() - w.cost_after).abs() < 1e-9,
            "round cost differs: {} vs {}",
            g.cost_after.total(),
            w.cost_after
        );
    }
    assert!(
        (got.cost.total() - want.cost).abs() < 1e-9,
        "final cost differs: {} vs {}",
        got.cost.total(),
        want.cost
    );
}

// ---------------------------------------------------------------------------
// Engine vs reference.
// ---------------------------------------------------------------------------

#[test]
fn largest_class_matches_reference_on_random_maps() {
    for seed in 0..8u64 {
        let xmap = random_xmap(seed, 8, 12, 48, 5);
        let cancel = XCancelConfig::new(24, 4);
        for policy in [
            CellSelection::First,
            CellSelection::Seeded(seed ^ 0xdead),
            CellSelection::GlobalMaxX,
        ] {
            let opts = PlanOptions {
                policy,
                ..PlanOptions::default()
            };
            let got = PartitionEngine::with_options(cancel, opts).run(&xmap);
            let want = ref_run(&xmap, cancel, SplitStrategy::LargestClass, policy);
            assert_matches_reference(&got, &want);
        }
    }
}

#[test]
fn best_cost_matches_reference_on_random_maps() {
    for seed in 0..6u64 {
        let xmap = random_xmap(seed, 4, 8, 24, 4);
        let cancel = XCancelConfig::new(16, 3);
        let opts = PlanOptions {
            strategy: SplitStrategy::BestCost,
            ..PlanOptions::default()
        };
        let got = PartitionEngine::with_options(cancel, opts).run(&xmap);
        let want = ref_run(&xmap, cancel, SplitStrategy::BestCost, CellSelection::First);
        assert_matches_reference(&got, &want);
    }
}

// ---------------------------------------------------------------------------
// Thread-count invariance: bit-identical outcomes at 1, 2 and N workers.
// ---------------------------------------------------------------------------

fn assert_outcomes_identical(a: &PartitionOutcome, b: &PartitionOutcome, label: &str) {
    assert_eq!(a.partitions, b.partitions, "{label}: partitions differ");
    assert_eq!(a.masks, b.masks, "{label}: masks differ");
    assert_eq!(a.rounds, b.rounds, "{label}: rounds differ");
    assert_eq!(a.cost, b.cost, "{label}: cost differs");
    assert_eq!(
        a.initial_cost, b.initial_cost,
        "{label}: initial cost differs"
    );
}

#[test]
fn outcome_is_identical_for_every_thread_count() {
    for seed in 0..4u64 {
        let xmap = random_xmap(seed, 10, 20, 64, 6);
        let cancel = XCancelConfig::new(32, 5);
        for strategy in [SplitStrategy::LargestClass, SplitStrategy::BestCost] {
            let base = PartitionEngine::with_options(
                cancel,
                PlanOptions {
                    strategy,
                    threads: 1,
                    ..PlanOptions::default()
                },
            )
            .run(&xmap);
            for threads in [2, 3, 8] {
                let other = PartitionEngine::with_options(
                    cancel,
                    PlanOptions {
                        strategy,
                        threads,
                        ..PlanOptions::default()
                    },
                )
                .run(&xmap);
                assert_outcomes_identical(
                    &base,
                    &other,
                    &format!("seed={seed} {strategy:?} threads={threads}"),
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Delta analysis vs full rescan.
// ---------------------------------------------------------------------------

#[test]
fn delta_child_analysis_matches_full_rescan() {
    for seed in 0..6u64 {
        let xmap = random_xmap(seed, 6, 10, 40, 5);
        let parent_set = PatternSet::all(40);
        let parent = CorrelationAnalysis::analyze(&xmap, &parent_set);
        // Split on every X-capturing cell's pattern set in turn.
        let mut rng = XhcRng::seed_from_u64(seed);
        for _ in 0..8 {
            if xmap.num_x_cells() == 0 {
                break;
            }
            let pos = rng.gen_index(xmap.num_x_cells());
            let (_, xset) = xmap.entry(pos);
            let (with_set, without_set) = parent_set.split_by(xset);
            if with_set.is_empty() || without_set.is_empty() {
                continue;
            }
            for threads in [1, 4] {
                let (dw, dwo) = parent.analyze_children(&xmap, &with_set, threads);
                let fw = CorrelationAnalysis::analyze(&xmap, &with_set);
                let fwo = CorrelationAnalysis::analyze(&xmap, &without_set);
                for (delta, full) in [(&dw, &fw), (&dwo, &fwo)] {
                    assert_eq!(delta.total_x(), full.total_x());
                    assert_eq!(delta.partition_card(), full.partition_card());
                    assert_eq!(delta.num_active(), full.num_active());
                    let dc: Vec<(usize, Vec<usize>)> = delta
                        .classes()
                        .map(|(c, cells)| (c, cells.to_vec()))
                        .collect();
                    let fc: Vec<(usize, Vec<usize>)> = full
                        .classes()
                        .map(|(c, cells)| (c, cells.to_vec()))
                        .collect();
                    assert_eq!(dc, fc, "class structure differs");
                    assert_eq!(
                        delta.pivot_class().map(|(c, s)| (c, s.to_vec())),
                        full.pivot_class().map(|(c, s)| (c, s.to_vec()))
                    );
                }
            }
        }
    }
}

#[test]
fn nested_delta_splits_match_full_rescan() {
    // Two levels of splitting: children of children must still agree with
    // a from-scratch analysis.
    let xmap = random_xmap(17, 8, 12, 48, 5);
    let root_set = PatternSet::all(48);
    let root = CorrelationAnalysis::analyze(&xmap, &root_set);
    let Some((_, cells)) = root.pivot_class() else {
        panic!("random map must be splittable");
    };
    let xset = xmap
        .xset_linear(cells[0])
        .expect("pivot captures X")
        .clone();
    let (l1_set, _) = root_set.split_by(&xset);
    let (l1, _) = root.analyze_children(&xmap, &l1_set, 1);
    let Some((_, cells2)) = l1.pivot_class() else {
        return; // unsplittable second level is a valid outcome
    };
    let xset2 = xmap
        .xset_linear(cells2[0])
        .expect("pivot captures X")
        .clone();
    let (l2_set, l2_rest) = l1_set.split_by(&xset2);
    if l2_set.is_empty() || l2_rest.is_empty() {
        return;
    }
    let (got_w, got_wo) = l1.analyze_children(&xmap, &l2_set, 1);
    let want_w = CorrelationAnalysis::analyze(&xmap, &l2_set);
    let want_wo = CorrelationAnalysis::analyze(&xmap, &l2_rest);
    for (got, want) in [(&got_w, &want_w), (&got_wo, &want_wo)] {
        assert_eq!(got.total_x(), want.total_x());
        let gc: Vec<(usize, Vec<usize>)> = got.classes().map(|(c, s)| (c, s.to_vec())).collect();
        let wc: Vec<(usize, Vec<usize>)> = want.classes().map(|(c, s)| (c, s.to_vec())).collect();
        assert_eq!(gc, wc);
    }
}
