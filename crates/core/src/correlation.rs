//! X-value correlation analysis (the paper's §3).
//!
//! The partitioning algorithm is driven by the observation that X's are
//! inter-correlated: the *same* scan cells capture X's under the *same*
//! test patterns. The analysis counts, per scan cell and restricted to a
//! pattern subset, how many X's it captures, and groups cells into classes
//! by that count. The "largest number of scan cells having the same number
//! of X's" (the biggest class) is where the paper looks for a partitioning
//! pivot.
//!
//! The representation is columnar and allocation-lean: active cells and
//! their counts live in flat parallel arrays, classes are materialised by
//! a counting sort, and splitting a partition re-analyzes **only the
//! cells that were X-active in the parent** (the delta path,
//! [`CorrelationAnalysis::analyze_children`]) — a child's "without" count
//! is derived as `parent − with`, so one subset intersection per active
//! cell yields both children.

use xhc_bits::PatternSet;
use xhc_scan::XMap;

/// Minimum active-cell population before a child analysis fans out over
/// the worker pool; below this the scoped-thread overhead dominates.
const PAR_MIN_ACTIVE: usize = 4096;

/// Per-cell X counts within a pattern subset, grouped into count classes.
///
/// # Examples
///
/// ```
/// use xhc_bits::PatternSet;
/// use xhc_core::CorrelationAnalysis;
/// use xhc_scan::{CellId, ScanConfig, XMapBuilder};
///
/// let cfg = ScanConfig::uniform(2, 2);
/// let mut b = XMapBuilder::new(cfg, 4);
/// b.add_x(CellId::new(0, 0), 0).unwrap();
/// b.add_x(CellId::new(0, 0), 1).unwrap();
/// b.add_x(CellId::new(1, 1), 2).unwrap();
/// let xmap = b.finish();
///
/// let analysis = CorrelationAnalysis::analyze(&xmap, &PatternSet::all(4));
/// assert_eq!(analysis.count_of(0), 2); // SC1[0] has linear index 0
/// assert_eq!(analysis.class(1), &[3]); // linear index of SC2[1]
/// ```
#[derive(Debug, Clone)]
pub struct CorrelationAnalysis {
    /// XMap entry positions of the active (count > 0) cells, ascending.
    entries: Vec<u32>,
    /// Parallel: linear cell index per active entry (ascending, since
    /// entry positions are ascending by linear index).
    cells: Vec<u32>,
    /// Parallel: restricted X count per active entry.
    counts: Vec<u32>,
    /// Active cells regrouped by count (counting sort): ascending count,
    /// ascending linear index within a class.
    grouped: Vec<usize>,
    /// One entry per non-empty class, ascending by count:
    /// `(count, start, end)` delimiting its `grouped` slice.
    class_ranges: Vec<(usize, usize, usize)>,
    /// Cardinality of the pattern subset analyzed.
    partition_card: usize,
    /// Total X's within the subset.
    total_x: usize,
}

impl CorrelationAnalysis {
    /// Analyzes `xmap` restricted to the `partition` pattern subset — a
    /// full scan over every X-capturing cell of the map.
    ///
    /// # Panics
    ///
    /// Panics if the partition universe differs from the map's pattern
    /// count.
    pub fn analyze(xmap: &XMap, partition: &PatternSet) -> Self {
        let n = xmap.num_x_cells();
        let mut entries = Vec::new();
        let mut cells = Vec::new();
        let mut counts = Vec::new();
        let mut total_x = 0usize;
        for pos in 0..n {
            let (idx, xs) = xmap.entry(pos);
            let c = xs.intersection_card(partition);
            if c > 0 {
                entries.push(pos as u32);
                cells.push(idx as u32);
                counts.push(c as u32);
                total_x += c;
            }
        }
        Self::build(entries, cells, counts, partition.card(), total_x)
    }

    /// The delta path: analyzes the two children of a binary split of
    /// this partition without touching cells that were X-free here.
    ///
    /// `with` must be the child pattern set `self ∩ pivot` (the other
    /// child is implicitly `parent \ with`): a cell's "without" count is
    /// then `parent_count − with_count`, so the whole split costs one
    /// subset intersection per *active* cell. For large active
    /// populations the intersections fan out over up to `threads`
    /// workers; the result is identical for every thread count.
    ///
    /// # Panics
    ///
    /// Panics if `with` has more patterns than the analyzed subset (it
    /// must be a subset of it).
    pub fn analyze_children(&self, xmap: &XMap, with: &PatternSet, threads: usize) -> (Self, Self) {
        let with_card = with.card();
        assert!(
            with_card <= self.partition_card,
            "`with` must be a subset of the analyzed partition"
        );
        let n = self.entries.len();

        // One intersection per active cell, fanned out when worthwhile.
        let with_counts: Vec<u32> = if n >= PAR_MIN_ACTIVE && threads > 1 {
            let chunk = n.div_ceil(threads).max(1024);
            xhc_par::par_chunks_threads(threads, &self.entries, chunk, |positions| {
                positions
                    .iter()
                    .map(|&pos| xmap.entry(pos as usize).1.intersection_card(with) as u32)
                    .collect::<Vec<u32>>()
            })
            .into_iter()
            .flatten()
            .collect()
        } else {
            self.entries
                .iter()
                .map(|&pos| xmap.entry(pos as usize).1.intersection_card(with) as u32)
                .collect()
        };

        let mut w = (Vec::new(), Vec::new(), Vec::new(), 0usize);
        let mut wo = (Vec::new(), Vec::new(), Vec::new(), 0usize);
        for (i, &cw) in with_counts.iter().enumerate() {
            let cwo = self.counts[i] - cw;
            if cw > 0 {
                w.0.push(self.entries[i]);
                w.1.push(self.cells[i]);
                w.2.push(cw);
                w.3 += cw as usize;
            }
            if cwo > 0 {
                wo.0.push(self.entries[i]);
                wo.1.push(self.cells[i]);
                wo.2.push(cwo);
                wo.3 += cwo as usize;
            }
        }
        (
            Self::build(w.0, w.1, w.2, with_card, w.3),
            Self::build(wo.0, wo.1, wo.2, self.partition_card - with_card, wo.3),
        )
    }

    /// Groups flat `(entry, cell, count)` triples into count classes by a
    /// counting sort over the count domain.
    fn build(
        entries: Vec<u32>,
        cells: Vec<u32>,
        counts: Vec<u32>,
        partition_card: usize,
        total_x: usize,
    ) -> Self {
        let max_count = counts.iter().copied().max().unwrap_or(0) as usize;
        let mut hist = vec![0u32; max_count + 1];
        for &c in &counts {
            hist[c as usize] += 1;
        }
        // Class ranges and placement cursors from the histogram.
        let mut class_ranges = Vec::new();
        let mut cursors = vec![0usize; max_count + 1];
        let mut offset = 0usize;
        for (count, &n) in hist.iter().enumerate().skip(1) {
            if n > 0 {
                class_ranges.push((count, offset, offset + n as usize));
                cursors[count] = offset;
                offset += n as usize;
            }
        }
        // Stable placement: cells are visited in ascending linear-index
        // order, so each class slice comes out ascending too.
        let mut grouped = vec![0usize; cells.len()];
        for (i, &c) in counts.iter().enumerate() {
            let cur = &mut cursors[c as usize];
            grouped[*cur] = cells[i] as usize;
            *cur += 1;
        }
        CorrelationAnalysis {
            entries,
            cells,
            counts,
            grouped,
            class_ranges,
            partition_card,
            total_x,
        }
    }

    /// Number of X-active cells in the analyzed subset.
    pub fn num_active(&self) -> usize {
        self.cells.len()
    }

    /// XMap entry positions of the active cells, ascending. These double
    /// as row ids into the matrix built by `XMap::to_bitmatrix`, which is
    /// how the cost-only split evaluator restricts its word sweeps to the
    /// cells that can possibly become fully-X in a child partition.
    pub fn active_entries(&self) -> &[u32] {
        &self.entries
    }

    /// The restricted X count of a cell by linear index (0 if X-free).
    pub fn count_of(&self, cell_index: usize) -> usize {
        if cell_index > u32::MAX as usize {
            return 0;
        }
        match self.cells.binary_search(&(cell_index as u32)) {
            Ok(i) => self.counts[i] as usize,
            Err(_) => 0,
        }
    }

    /// The cells (linear indices, ascending) with exactly `count` X's.
    pub fn class(&self, count: usize) -> &[usize] {
        match self
            .class_ranges
            .binary_search_by_key(&count, |&(c, _, _)| c)
        {
            Ok(i) => {
                let (_, start, end) = self.class_ranges[i];
                &self.grouped[start..end]
            }
            Err(_) => &[],
        }
    }

    /// All (count, class) pairs, ascending by count.
    pub fn classes(&self) -> impl Iterator<Item = (usize, &[usize])> {
        self.class_ranges
            .iter()
            .map(|&(c, start, end)| (c, &self.grouped[start..end]))
    }

    /// Total X's in the analyzed subset.
    pub fn total_x(&self) -> usize {
        self.total_x
    }

    /// Cardinality of the analyzed pattern subset.
    pub fn partition_card(&self) -> usize {
        self.partition_card
    }

    /// The paper's pivot-class rule: among counts strictly between 0 and
    /// the partition size (a split on a full-count or zero-count cell would
    /// be trivial), the class with the most cells; ties prefer the higher
    /// count (more X's removed). Returns `None` when no class has at least
    /// two cells — the partition is then unsplittable, matching the worked
    /// example where all-singleton classes stop the recursion.
    pub fn pivot_class(&self) -> Option<(usize, &[usize])> {
        self.classes()
            .filter(|&(count, cells)| count < self.partition_card && cells.len() >= 2)
            .max_by_key(|&(count, cells)| (cells.len(), count))
    }

    /// Cells maskable over the whole analyzed subset: X count equals the
    /// partition cardinality.
    pub fn fully_x_cells(&self) -> &[usize] {
        if self.partition_card == 0 {
            &[]
        } else {
            self.class(self.partition_card)
        }
    }
}

/// Aggregate inter-correlation statistics over a full X map (the analysis
/// the paper runs on its industrial example in §3).
#[derive(Debug, Clone, PartialEq)]
pub struct InterCorrelationStats {
    /// Scan cells in the design.
    pub total_cells: usize,
    /// Cells that capture at least one X.
    pub x_cells: usize,
    /// Total X's.
    pub total_x: usize,
    /// Smallest fraction of cells holding ≥ 90% of all X's.
    pub cells_for_90pct: f64,
    /// Size of the biggest group of cells with *identical* X pattern sets.
    pub largest_identical_group: usize,
    /// Size of the biggest class of cells with the same X count.
    pub largest_count_class: usize,
    /// The X count shared by that class.
    pub largest_count_class_count: usize,
}

/// Computes §3-style inter-correlation statistics.
pub fn inter_correlation_stats(xmap: &XMap) -> InterCorrelationStats {
    let total_cells = xmap.config().total_cells();
    let x_cells = xmap.num_x_cells();
    let total_x = xmap.total_x();

    // Fraction of cells covering 90% of X's: sort counts descending.
    let mut counts: Vec<usize> = xmap.iter().map(|(_, xs)| xs.card()).collect();
    counts.sort_unstable_by(|a, b| b.cmp(a));
    let target = (total_x as f64 * 0.9).ceil() as usize;
    let mut acc = 0;
    let mut needed = 0;
    for c in &counts {
        if acc >= target {
            break;
        }
        acc += c;
        needed += 1;
    }
    let cells_for_90pct = if total_cells == 0 {
        0.0
    } else {
        needed as f64 / total_cells as f64
    };

    // Largest group of identical X pattern sets.
    let mut identical: std::collections::HashMap<&xhc_bits::PatternSet, usize> =
        std::collections::HashMap::new();
    for (_, xs) in xmap.iter() {
        *identical.entry(xs).or_insert(0) += 1;
    }
    let largest_identical_group = identical.values().copied().max().unwrap_or(0);

    // Largest same-count class.
    let mut by_count: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
    for c in &counts {
        *by_count.entry(*c).or_insert(0) += 1;
    }
    let (largest_count_class_count, largest_count_class) = by_count
        .iter()
        .max_by_key(|&(&count, &n)| (n, count))
        .map(|(&count, &n)| (count, n))
        .unwrap_or((0, 0));

    InterCorrelationStats {
        total_cells,
        x_cells,
        total_x,
        cells_for_90pct,
        largest_identical_group,
        largest_count_class,
        largest_count_class_count,
    }
}

/// Intra-(spatial-)correlation statistics: how X's cluster along scan
/// chains (the "contiguous and adjacent areas of scan chains" of \[13\]).
///
/// The paper focuses on inter-correlation but contrasts it with the
/// intra-correlation other schemes exploit; these statistics quantify
/// which regime a workload is in.
#[derive(Debug, Clone, PartialEq)]
pub struct IntraCorrelationStats {
    /// X-capturing cells.
    pub x_cells: usize,
    /// X-capturing cells whose chain neighbour (position ± 1) also
    /// captures X.
    pub x_cells_with_x_neighbour: usize,
    /// Number of maximal runs of adjacent X-capturing cells.
    pub runs: usize,
    /// Length of the longest run.
    pub longest_run: usize,
    /// Mean pattern-set Jaccard similarity between adjacent X-capturing
    /// cells (1.0 = identical sets; `None` when no adjacent pair exists).
    pub mean_adjacent_jaccard: Option<f64>,
}

/// Computes [`IntraCorrelationStats`] for an X map.
pub fn intra_correlation_stats(xmap: &XMap) -> IntraCorrelationStats {
    let config = xmap.config();
    let mut x_cells = 0usize;
    let mut with_neighbour = 0usize;
    let mut runs = 0usize;
    let mut longest_run = 0usize;
    let mut jaccard_sum = 0.0f64;
    let mut jaccard_count = 0usize;

    for chain in 0..config.num_chains() {
        let len = config.chain_len(chain);
        let mut run = 0usize;
        let mut prev_xset: Option<&PatternSet> = None;
        for pos in 0..len {
            let xset = xmap.xset(xhc_scan::CellId::new(chain, pos));
            match xset {
                Some(xs) => {
                    x_cells += 1;
                    run += 1;
                    if let Some(prev) = prev_xset {
                        // Both this cell and its predecessor capture X.
                        with_neighbour += if run == 2 { 2 } else { 1 };
                        let inter = prev.intersection_card(xs) as f64;
                        let union = (prev.card() + xs.card()) as f64 - inter;
                        if union > 0.0 {
                            jaccard_sum += inter / union;
                            jaccard_count += 1;
                        }
                    }
                    prev_xset = Some(xs);
                }
                None => {
                    if run > 0 {
                        runs += 1;
                        longest_run = longest_run.max(run);
                    }
                    run = 0;
                    prev_xset = None;
                }
            }
        }
        if run > 0 {
            runs += 1;
            longest_run = longest_run.max(run);
        }
    }

    IntraCorrelationStats {
        x_cells,
        x_cells_with_x_neighbour: with_neighbour,
        runs,
        longest_run,
        mean_adjacent_jaccard: if jaccard_count > 0 {
            Some(jaccard_sum / jaccard_count as f64)
        } else {
            None
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xhc_scan::{CellId, ScanConfig, XMapBuilder};

    pub(crate) fn fig4_xmap() -> XMap {
        let cfg = ScanConfig::uniform(5, 3);
        let mut b = XMapBuilder::new(cfg, 8);
        for p in [0, 3, 4, 5] {
            b.add_x(CellId::new(0, 0), p).unwrap();
            b.add_x(CellId::new(1, 0), p).unwrap();
            b.add_x(CellId::new(2, 0), p).unwrap();
        }
        for p in [0, 4] {
            b.add_x(CellId::new(1, 2), p).unwrap();
        }
        for p in [0, 1, 2, 3, 4, 6, 7] {
            b.add_x(CellId::new(3, 2), p).unwrap();
        }
        for p in [0, 1, 3, 4, 6, 7] {
            b.add_x(CellId::new(4, 1), p).unwrap();
        }
        b.add_x(CellId::new(4, 2), 5).unwrap();
        b.finish()
    }

    #[test]
    fn fig4_whole_set_classes() {
        let xmap = fig4_xmap();
        let a = CorrelationAnalysis::analyze(&xmap, &PatternSet::all(8));
        assert_eq!(a.total_x(), 28);
        // Classes: 4 X's -> 3 cells; 2 -> 1; 7 -> 1; 6 -> 1; 1 -> 1.
        assert_eq!(a.class(4).len(), 3);
        assert_eq!(a.class(7).len(), 1);
        assert_eq!(a.class(6).len(), 1);
        assert_eq!(a.class(2).len(), 1);
        assert_eq!(a.class(1).len(), 1);
        // Pivot class: count 4 with 3 cells (the paper picks SC1[0]).
        let (count, cells) = a.pivot_class().expect("splittable");
        assert_eq!(count, 4);
        assert_eq!(cells.len(), 3);
        assert_eq!(cells[0], 0, "first cell of the class is SC1[0]");
    }

    #[test]
    fn fig5_partition1_pivot() {
        let xmap = fig4_xmap();
        let p1 = PatternSet::from_patterns(8, [0, 3, 4, 5]);
        let a = CorrelationAnalysis::analyze(&xmap, &p1);
        // Cells at count 4 (== |S|) are excluded; pivot is count 3 with
        // SC4[2] and SC5[1].
        let (count, cells) = a.pivot_class().expect("splittable");
        assert_eq!(count, 3);
        assert_eq!(cells.len(), 2);
        let cfg = xmap.config();
        assert_eq!(cells[0], cfg.linear_index(CellId::new(3, 2)));
        assert_eq!(cells[1], cfg.linear_index(CellId::new(4, 1)));
        // Fully-X cells: the three count-4 cells.
        assert_eq!(a.fully_x_cells().len(), 3);
    }

    #[test]
    fn fig5_partition2_not_splittable() {
        let xmap = fig4_xmap();
        let p2 = PatternSet::from_patterns(8, [1, 2, 6, 7]);
        let a = CorrelationAnalysis::analyze(&xmap, &p2);
        // SC4[2] has 4 (== |S|, excluded); SC5[1] has 3 (singleton class).
        assert!(a.pivot_class().is_none());
        assert_eq!(a.count_of(xmap.config().linear_index(CellId::new(4, 1))), 3);
        assert_eq!(a.fully_x_cells().len(), 1);
    }

    #[test]
    fn fig5_partitions_3_and_4_not_splittable() {
        let xmap = fig4_xmap();
        for pats in [
            PatternSet::from_patterns(8, [0, 3, 4]),
            PatternSet::from_patterns(8, [5]),
        ] {
            let a = CorrelationAnalysis::analyze(&xmap, &pats);
            assert!(a.pivot_class().is_none(), "{pats:?} must not split");
        }
    }

    #[test]
    fn empty_partition_analysis() {
        let xmap = fig4_xmap();
        let a = CorrelationAnalysis::analyze(&xmap, &PatternSet::empty(8));
        assert_eq!(a.total_x(), 0);
        assert!(a.pivot_class().is_none());
        assert!(a.fully_x_cells().is_empty());
    }

    #[test]
    fn intra_stats_counts_runs() {
        // One chain of 6 cells: X at positions 0,1,2 (a run of 3, with
        // identical sets for 0,1 and a different set for 2) and at 4
        // (isolated).
        let cfg = ScanConfig::uniform(1, 6);
        let mut b = XMapBuilder::new(cfg, 4);
        for p in [0, 1] {
            b.add_x(CellId::new(0, 0), p).unwrap();
            b.add_x(CellId::new(0, 1), p).unwrap();
        }
        b.add_x(CellId::new(0, 2), 3).unwrap();
        b.add_x(CellId::new(0, 4), 2).unwrap();
        let xmap = b.finish();
        let s = intra_correlation_stats(&xmap);
        assert_eq!(s.x_cells, 4);
        assert_eq!(s.runs, 2);
        assert_eq!(s.longest_run, 3);
        assert_eq!(s.x_cells_with_x_neighbour, 3);
        // Two adjacent pairs: (0,1) identical -> 1.0; (1,2) disjoint -> 0.
        let j = s.mean_adjacent_jaccard.unwrap();
        assert!((j - 0.5).abs() < 1e-9, "{j}");
    }

    #[test]
    fn intra_stats_empty_map() {
        let cfg = ScanConfig::uniform(2, 3);
        let xmap = XMapBuilder::new(cfg, 4).finish();
        let s = intra_correlation_stats(&xmap);
        assert_eq!(s.x_cells, 0);
        assert_eq!(s.runs, 0);
        assert_eq!(s.mean_adjacent_jaccard, None);
    }

    #[test]
    fn intra_stats_runs_do_not_cross_chains() {
        // Last cell of chain 0 and first of chain 1 both X: adjacent in
        // linear index but NOT in any chain.
        let cfg = ScanConfig::uniform(2, 2);
        let mut b = XMapBuilder::new(cfg, 2);
        b.add_x(CellId::new(0, 1), 0).unwrap();
        b.add_x(CellId::new(1, 0), 0).unwrap();
        let xmap = b.finish();
        let s = intra_correlation_stats(&xmap);
        assert_eq!(s.runs, 2);
        assert_eq!(s.longest_run, 1);
        assert_eq!(s.x_cells_with_x_neighbour, 0);
    }

    #[test]
    fn stats_on_fig4() {
        let xmap = fig4_xmap();
        let s = inter_correlation_stats(&xmap);
        assert_eq!(s.total_cells, 15);
        assert_eq!(s.x_cells, 7);
        assert_eq!(s.total_x, 28);
        // The three count-4 cells share an identical pattern set.
        assert_eq!(s.largest_identical_group, 3);
        assert_eq!(s.largest_count_class, 3);
        assert_eq!(s.largest_count_class_count, 4);
        assert!(s.cells_for_90pct > 0.0 && s.cells_for_90pct < 1.0);
    }
}
