//! Control-bit cost accounting for the hybrid architecture.

use xhc_bits::PatternSet;
use xhc_misr::{safe_mask, MaskWord, XCancelConfig};
use xhc_scan::XMap;

/// The control-bit cost of a partitioning of the pattern set, per the
/// paper's §4 formula:
///
/// ```text
/// Total = L · C · #partitions  +  m · q · leakedX / (m − q)
/// ```
///
/// `masking_bits` is the first term, `canceling_bits` the (fractional)
/// second.
///
/// # Examples
///
/// ```
/// use xhc_bits::PatternSet;
/// use xhc_core::hybrid_cost;
/// use xhc_misr::XCancelConfig;
/// use xhc_scan::{CellId, ScanConfig, XMapBuilder};
///
/// let cfg = ScanConfig::uniform(5, 3);
/// let mut b = XMapBuilder::new(cfg, 8);
/// for p in 0..8 { b.add_x(CellId::new(0, 0), p).unwrap(); }
/// let xmap = b.finish();
///
/// let cost = hybrid_cost(&xmap, &[PatternSet::all(8)], XCancelConfig::new(10, 2));
/// assert_eq!(cost.masking_bits, 15);     // one 15-bit mask word
/// assert_eq!(cost.leaked_x, 0);          // the only X cell is maskable
/// assert_eq!(cost.total(), 15.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HybridCost {
    /// `L · C · #partitions` — mask-word bits streamed once per partition.
    pub masking_bits: u128,
    /// `m · q · leakedX / (m − q)` — selective-XOR bits, fractional as the
    /// paper computes it.
    pub canceling_bits: f64,
    /// X's removed by the partition masks.
    pub masked_x: usize,
    /// X's left for the X-canceling MISR.
    pub leaked_x: usize,
    /// Number of partitions.
    pub num_partitions: usize,
}

impl HybridCost {
    /// Total control bits (fractional).
    pub fn total(&self) -> f64 {
        self.masking_bits as f64 + self.canceling_bits
    }

    /// Total control bits rounded up, as the paper reports (57.5 → 58).
    pub fn total_ceil(&self) -> u128 {
        self.total().ceil() as u128
    }
}

/// Computes the safe (no non-X loss) masks for each partition and the
/// resulting hybrid control-bit cost.
///
/// # Panics
///
/// Panics if a partition's universe differs from the map's pattern count.
pub fn hybrid_cost(xmap: &XMap, partitions: &[PatternSet], cancel: XCancelConfig) -> HybridCost {
    let (cost, _) = hybrid_cost_with_masks(xmap, partitions, cancel);
    cost
}

/// Like [`hybrid_cost`] but also returns the per-partition mask words.
pub fn hybrid_cost_with_masks(
    xmap: &XMap,
    partitions: &[PatternSet],
    cancel: XCancelConfig,
) -> (HybridCost, Vec<MaskWord>) {
    let total_x = xmap.total_x();
    // Per-partition mask extraction is independent; fan it out. Results
    // come back in partition order, so the fold is deterministic.
    let per: Vec<(MaskWord, usize)> = xhc_par::par_map(partitions, |part| {
        let mask = safe_mask(xmap, part);
        let removed = mask.x_removed(xmap, Some(part));
        (mask, removed)
    });
    let masked_x: usize = per.iter().map(|&(_, removed)| removed).sum();
    let masks: Vec<MaskWord> = per.into_iter().map(|(mask, _)| mask).collect();
    let leaked_x = total_x - masked_x;
    let masking_bits = xmap.config().mask_word_bits() as u128 * partitions.len() as u128;
    let canceling_bits = cancel.control_bits(leaked_x);
    (
        HybridCost {
            masking_bits,
            canceling_bits,
            masked_x,
            leaked_x,
            num_partitions: partitions.len(),
        },
        masks,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use xhc_scan::{CellId, ScanConfig, XMapBuilder};

    fn fig4_xmap() -> XMap {
        let cfg = ScanConfig::uniform(5, 3);
        let mut b = XMapBuilder::new(cfg, 8);
        for p in [0, 3, 4, 5] {
            b.add_x(CellId::new(0, 0), p).unwrap();
            b.add_x(CellId::new(1, 0), p).unwrap();
            b.add_x(CellId::new(2, 0), p).unwrap();
        }
        for p in [0, 4] {
            b.add_x(CellId::new(1, 2), p).unwrap();
        }
        for p in [0, 1, 2, 3, 4, 6, 7] {
            b.add_x(CellId::new(3, 2), p).unwrap();
        }
        for p in [0, 1, 3, 4, 6, 7] {
            b.add_x(CellId::new(4, 1), p).unwrap();
        }
        b.add_x(CellId::new(4, 2), 5).unwrap();
        b.finish()
    }

    #[test]
    fn fig6_round1_cost_m10_q2() {
        // First partitioning round: {P1,P4,P5,P6} and {P2,P3,P7,P8};
        // 16 X's masked, 12 leaked; total = 3*5*2 + 10*2*12/8 = 60.
        let xmap = fig4_xmap();
        let parts = [
            PatternSet::from_patterns(8, [0, 3, 4, 5]),
            PatternSet::from_patterns(8, [1, 2, 6, 7]),
        ];
        let cost = hybrid_cost(&xmap, &parts, XCancelConfig::new(10, 2));
        assert_eq!(cost.masked_x, 16);
        assert_eq!(cost.leaked_x, 12);
        assert_eq!(cost.masking_bits, 30);
        assert!((cost.canceling_bits - 30.0).abs() < 1e-9);
        assert!((cost.total() - 60.0).abs() < 1e-9);
    }

    #[test]
    fn fig6_round2_cost_m10_q2() {
        // Second round: partitions {P2,P3,P7,P8}, {P1,P4,P5}, {P6};
        // 23 masked, 5 leaked; total = 3*5*3 + 10*2*5/8 = 57.5 -> 58.
        let xmap = fig4_xmap();
        let parts = [
            PatternSet::from_patterns(8, [1, 2, 6, 7]),
            PatternSet::from_patterns(8, [0, 3, 4]),
            PatternSet::from_patterns(8, [5]),
        ];
        let cost = hybrid_cost(&xmap, &parts, XCancelConfig::new(10, 2));
        assert_eq!(cost.masked_x, 23);
        assert_eq!(cost.leaked_x, 5);
        assert_eq!(cost.masking_bits, 45);
        assert!((cost.total() - 57.5).abs() < 1e-9);
        assert_eq!(cost.total_ceil(), 58);
    }

    #[test]
    fn fig6_costs_m10_q1() {
        // With m=10, q=1 the paper gets 43.3->44 (round 1) and 50.5->51
        // (round 2), so partitioning stops after round 1.
        let xmap = fig4_xmap();
        let cancel = XCancelConfig::new(10, 1);
        let round1 = [
            PatternSet::from_patterns(8, [0, 3, 4, 5]),
            PatternSet::from_patterns(8, [1, 2, 6, 7]),
        ];
        let round2 = [
            PatternSet::from_patterns(8, [1, 2, 6, 7]),
            PatternSet::from_patterns(8, [0, 3, 4]),
            PatternSet::from_patterns(8, [5]),
        ];
        let c1 = hybrid_cost(&xmap, &round1, cancel);
        let c2 = hybrid_cost(&xmap, &round2, cancel);
        assert_eq!(c1.total_ceil(), 44);
        assert_eq!(c2.total_ceil(), 51);
        assert!(c1.total() < c2.total());
    }

    #[test]
    fn round0_single_partition() {
        // Before any split: one mask word over all 8 patterns; no cell has
        // X under all 8, so nothing is masked and all 28 X's leak.
        let xmap = fig4_xmap();
        let cost = hybrid_cost(&xmap, &[PatternSet::all(8)], XCancelConfig::new(10, 2));
        assert_eq!(cost.masked_x, 0);
        assert_eq!(cost.leaked_x, 28);
        assert_eq!(cost.masking_bits, 15);
        assert!((cost.total() - (15.0 + 70.0)).abs() < 1e-9);
    }

    #[test]
    fn masks_align_with_cost() {
        let xmap = fig4_xmap();
        let parts = [
            PatternSet::from_patterns(8, [1, 2, 6, 7]),
            PatternSet::from_patterns(8, [0, 3, 4]),
            PatternSet::from_patterns(8, [5]),
        ];
        let (cost, masks) = hybrid_cost_with_masks(&xmap, &parts, XCancelConfig::new(10, 2));
        assert_eq!(masks.len(), 3);
        // Fig. 6 mask populations: 1, 5, 4 cells.
        assert_eq!(masks[0].count(), 1);
        assert_eq!(masks[1].count(), 5);
        assert_eq!(masks[2].count(), 4);
        let removed: usize = masks
            .iter()
            .zip(&parts)
            .map(|(m, p)| m.x_removed(&xmap, Some(p)))
            .sum();
        assert_eq!(removed, cost.masked_x);
    }
}
