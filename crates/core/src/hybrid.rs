//! The hybrid X-masking / X-canceling architecture, end to end.

use crate::baselines::{canceling_only_bits, masking_only_bits};
use crate::partition::{CellSelection, PartitionEngine, PartitionOutcome};
use xhc_logic::Trit;
use xhc_misr::XCancelConfig;
use xhc_scan::{ResponseMatrix, XMap};

/// A full evaluation of the proposed hybrid against both baselines on one
/// workload — one row of the paper's Table 1.
#[derive(Debug, Clone)]
pub struct HybridReport {
    /// Scan cells in the design.
    pub total_cells: usize,
    /// Scan chains.
    pub num_chains: usize,
    /// Patterns applied.
    pub num_patterns: usize,
    /// Total X's in the responses.
    pub total_x: usize,
    /// X-density of the raw responses.
    pub x_density: f64,
    /// The partitioning outcome (partitions, masks, cost trace).
    pub outcome: PartitionOutcome,
    /// Baseline \[5\]: conventional per-pattern X-masking control bits.
    pub masking_only_bits: u128,
    /// Baseline \[12\]: X-canceling-MISR-only control bits.
    pub canceling_only_bits: f64,
    /// The proposed method's total control bits.
    pub proposed_bits: f64,
    /// Control-bit improvement over X-masking only.
    pub impv_over_masking: f64,
    /// Control-bit improvement over X-canceling only.
    pub impv_over_canceling: f64,
    /// Normalized test time of X-canceling only (per the §5 formula).
    pub time_canceling_only: f64,
    /// Normalized test time of the proposed hybrid (residual X-density).
    pub time_proposed: f64,
    /// Test-time improvement of the hybrid over X-canceling only.
    pub time_impv: f64,
}

/// Evaluates the hybrid architecture on an X map: runs the partitioning
/// engine and fills in every Table-1 column.
///
/// # Examples
///
/// ```
/// use xhc_core::{evaluate_hybrid, CellSelection};
/// use xhc_misr::XCancelConfig;
/// use xhc_scan::{CellId, ScanConfig, XMapBuilder};
///
/// let cfg = ScanConfig::uniform(5, 3);
/// let mut b = XMapBuilder::new(cfg, 8);
/// for p in [0, 3, 4, 5] { b.add_x(CellId::new(0, 0), p).unwrap(); }
/// let xmap = b.finish();
///
/// let report = evaluate_hybrid(&xmap, XCancelConfig::new(10, 2), CellSelection::First);
/// assert!(report.proposed_bits <= report.masking_only_bits as f64);
/// assert!(report.impv_over_masking >= 1.0);
/// ```
pub fn evaluate_hybrid(xmap: &XMap, cancel: XCancelConfig, policy: CellSelection) -> HybridReport {
    let opts = crate::PlanOptions {
        policy,
        ..crate::PlanOptions::default()
    };
    let outcome = PartitionEngine::with_options(cancel, opts).run(xmap);
    report_for_outcome(xmap, cancel, outcome)
}

/// Builds a [`HybridReport`] for an already-computed partitioning outcome
/// (used by the ablation benches to compare engine variants).
pub fn report_for_outcome(
    xmap: &XMap,
    cancel: XCancelConfig,
    outcome: PartitionOutcome,
) -> HybridReport {
    let total_cells = xmap.config().total_cells();
    let num_chains = xmap.config().num_chains();
    let num_patterns = xmap.num_patterns();
    let total_x = xmap.total_x();
    let bits = total_cells as f64 * num_patterns as f64;
    let x_density = if bits > 0.0 {
        total_x as f64 / bits
    } else {
        0.0
    };

    let masking_only = masking_only_bits(xmap.config(), num_patterns);
    let canceling_only = canceling_only_bits(cancel, total_x);
    let proposed = outcome.cost.total();

    let residual_density = if bits > 0.0 {
        outcome.cost.leaked_x as f64 / bits
    } else {
        0.0
    };
    let time_canceling_only = cancel.normalized_test_time(num_chains, x_density);
    let time_proposed = cancel.normalized_test_time(num_chains, residual_density);

    HybridReport {
        total_cells,
        num_chains,
        num_patterns,
        total_x,
        x_density,
        masking_only_bits: masking_only,
        canceling_only_bits: canceling_only,
        proposed_bits: proposed,
        impv_over_masking: masking_only as f64 / proposed.max(f64::MIN_POSITIVE),
        impv_over_canceling: canceling_only / proposed.max(f64::MIN_POSITIVE),
        time_canceling_only,
        time_proposed,
        time_impv: time_canceling_only / time_proposed,
        outcome,
    }
}

/// Applies the per-partition masks of an outcome to captured responses,
/// producing the stream the X-canceling MISR actually sees.
///
/// Masked positions read as `0` (AND gating). X's surviving in the output
/// are exactly the outcome's `leaked_x`.
///
/// # Panics
///
/// Panics if the response matrix and the outcome disagree on shape, or if
/// a pattern belongs to no partition.
pub fn apply_partition_masks(
    responses: &ResponseMatrix,
    outcome: &PartitionOutcome,
) -> ResponseMatrix {
    let config = responses.config().clone();
    let cells = config.total_cells();
    let mut rows: Vec<Vec<Trit>> = Vec::with_capacity(responses.num_patterns());
    for p in 0..responses.num_patterns() {
        let part = outcome
            .partitions
            .iter()
            .position(|set| set.contains(p))
            .unwrap_or_else(|| panic!("pattern {p} belongs to no partition"));
        let mask = &outcome.masks[part];
        let row: Vec<Trit> = (0..cells).map(|c| responses.get_linear(p, c)).collect();
        rows.push(mask.apply(&row));
    }
    ResponseMatrix::from_rows(config, &rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xhc_scan::{CellId, ScanConfig, XMapBuilder};

    fn fig4_xmap() -> XMap {
        let cfg = ScanConfig::uniform(5, 3);
        let mut b = XMapBuilder::new(cfg, 8);
        for p in [0, 3, 4, 5] {
            b.add_x(CellId::new(0, 0), p).unwrap();
            b.add_x(CellId::new(1, 0), p).unwrap();
            b.add_x(CellId::new(2, 0), p).unwrap();
        }
        for p in [0, 4] {
            b.add_x(CellId::new(1, 2), p).unwrap();
        }
        for p in [0, 1, 2, 3, 4, 6, 7] {
            b.add_x(CellId::new(3, 2), p).unwrap();
        }
        for p in [0, 1, 3, 4, 6, 7] {
            b.add_x(CellId::new(4, 1), p).unwrap();
        }
        b.add_x(CellId::new(4, 2), 5).unwrap();
        b.finish()
    }

    fn fig4_responses() -> ResponseMatrix {
        // Concrete responses consistent with the Fig. 4 X map: X where the
        // map says X, a deterministic 0/1 elsewhere.
        let xmap = fig4_xmap();
        let cfg = xmap.config().clone();
        let mut m = ResponseMatrix::filled(cfg.clone(), 8, Trit::Zero);
        for p in 0..8 {
            for idx in 0..cfg.total_cells() {
                let cell = cfg.cell_at(idx);
                let v = if xmap.is_x(p, cell) {
                    Trit::X
                } else {
                    Trit::from_bool((p + idx) % 2 == 0)
                };
                m.set(p, cell, v);
            }
        }
        m
    }

    #[test]
    fn report_matches_fig6_numbers() {
        let xmap = fig4_xmap();
        let r = evaluate_hybrid(&xmap, XCancelConfig::new(10, 2), CellSelection::First);
        assert_eq!(r.total_x, 28);
        assert_eq!(r.masking_only_bits, 120);
        assert!((r.proposed_bits - 57.5).abs() < 1e-9);
        assert!(r.impv_over_masking > 2.0);
        // Canceling-only: 10*2*28/8 = 70 bits -> hybrid wins.
        assert!((r.canceling_only_bits - 70.0).abs() < 1e-9);
        assert!(r.impv_over_canceling > 1.2);
        // Residual X-density falls -> test time improves.
        assert!(r.time_proposed < r.time_canceling_only);
        assert!(r.time_impv > 1.0);
    }

    #[test]
    fn masked_responses_leak_exactly_leaked_x() {
        let xmap = fig4_xmap();
        let responses = fig4_responses();
        let outcome = PartitionEngine::new(XCancelConfig::new(10, 2)).run(&xmap);
        let masked = apply_partition_masks(&responses, &outcome);
        assert_eq!(masked.total_x(), outcome.leaked_x());
        assert_eq!(masked.total_x(), 5);
    }

    #[test]
    fn masking_preserves_every_non_x_value_position() {
        // No observable value is gated: every known bit either passes
        // through unchanged or... nothing else. Masked positions were X.
        let xmap = fig4_xmap();
        let responses = fig4_responses();
        let outcome = PartitionEngine::new(XCancelConfig::new(10, 2)).run(&xmap);
        let masked = apply_partition_masks(&responses, &outcome);
        let cfg = responses.config();
        for p in 0..8 {
            for idx in 0..cfg.total_cells() {
                let orig = responses.get_linear(p, idx);
                let got = masked.get_linear(p, idx);
                if orig.is_known() {
                    assert_eq!(orig, got, "non-X value changed at ({p},{idx})");
                }
            }
        }
    }

    #[test]
    fn x_free_workload_degenerates_gracefully() {
        let cfg = ScanConfig::uniform(3, 3);
        let xmap = XMapBuilder::new(cfg, 10).finish();
        let r = evaluate_hybrid(&xmap, XCancelConfig::paper_default(), CellSelection::First);
        assert_eq!(r.total_x, 0);
        assert_eq!(r.outcome.partitions.len(), 1);
        assert_eq!(r.time_proposed, 1.0);
        assert_eq!(r.canceling_only_bits, 0.0);
    }
}
