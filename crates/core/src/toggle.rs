//! Toggle-based masking baseline (the paper's related work \[15, 16\]).
//!
//! Toggle masking encodes, per scan chain per pattern, one contiguous
//! masked interval: the mask signal toggles on and off once during the
//! unload, so only `2·⌈log₂(L+1)⌉` control bits per chain per pattern are
//! needed instead of `L`. It exploits *intra*-correlation (clustered X's
//! along a chain) where the paper's method exploits *inter*-correlation
//! (the same cells across patterns) — implementing it makes the two
//! regimes directly comparable.

use xhc_misr::XCancelConfig;
use xhc_scan::XMap;

/// Which X's a toggle interval may cover.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TogglePolicy {
    /// The interval must be all-X (no observable value lost); it covers
    /// the longest all-X run of the chain slice.
    Conservative,
    /// The interval spans from the first to the last X of the chain slice,
    /// masking any non-X values in between (observability loss, as in
    /// \[15, 16\] — which is why those schemes need fault-simulation
    /// feedback).
    Aggressive,
}

/// The accounting of a toggle-masking front end combined with an
/// X-canceling MISR.
#[derive(Debug, Clone, PartialEq)]
pub struct ToggleMaskReport {
    /// Toggle control bits: `P · C · 2⌈log₂(L+1)⌉`.
    pub masking_bits: u128,
    /// Selective-XOR bits for the X's the intervals do not cover.
    pub canceling_bits: f64,
    /// X's removed by the intervals.
    pub masked_x: usize,
    /// X's left for the MISR.
    pub leaked_x: usize,
    /// Non-X response bits covered by aggressive intervals (0 for
    /// [`TogglePolicy::Conservative`]).
    pub lost_observability: usize,
}

impl ToggleMaskReport {
    /// Total control bits.
    pub fn total(&self) -> f64 {
        self.masking_bits as f64 + self.canceling_bits
    }
}

/// Evaluates toggle masking + X-canceling on an X map.
///
/// Builds, for every (pattern, chain), the X position list; the interval
/// chosen per the policy removes its X's, the rest leak into the MISR.
///
/// # Examples
///
/// ```
/// use xhc_core::{toggle_masking, TogglePolicy};
/// use xhc_misr::XCancelConfig;
/// use xhc_scan::{CellId, ScanConfig, XMapBuilder};
///
/// // A chain with X's at adjacent positions 1,2: one interval covers both.
/// let cfg = ScanConfig::uniform(1, 4);
/// let mut b = XMapBuilder::new(cfg, 1);
/// b.add_x(CellId::new(0, 1), 0).unwrap();
/// b.add_x(CellId::new(0, 2), 0).unwrap();
/// let xmap = b.finish();
/// let report = toggle_masking(&xmap, XCancelConfig::new(8, 2), TogglePolicy::Conservative);
/// assert_eq!(report.masked_x, 2);
/// assert_eq!(report.leaked_x, 0);
/// assert_eq!(report.lost_observability, 0);
/// ```
pub fn toggle_masking(
    xmap: &XMap,
    cancel: XCancelConfig,
    policy: TogglePolicy,
) -> ToggleMaskReport {
    let config = xmap.config();
    let patterns = xmap.num_patterns();
    let chains = config.num_chains();
    let l = config.max_chain_len();
    let addr_bits = usize::BITS as usize - (l + 1).leading_zeros() as usize; // ceil(log2(L+1))
    let masking_bits = (patterns as u128) * (chains as u128) * 2 * addr_bits as u128;

    // Per (pattern, chain): sorted X positions.
    let mut positions: std::collections::HashMap<(usize, usize), Vec<usize>> =
        std::collections::HashMap::new();
    for (cell, xs) in xmap.iter() {
        for p in xs.iter() {
            positions
                .entry((p, cell.chain as usize))
                .or_default()
                .push(cell.position as usize);
        }
    }

    let mut masked_x = 0usize;
    let mut lost = 0usize;
    for list in positions.values_mut() {
        list.sort_unstable();
        match policy {
            TogglePolicy::Conservative => {
                // Longest run of consecutive positions.
                let mut best = 0usize;
                let mut run = 1usize;
                for w in list.windows(2) {
                    if w[1] == w[0] + 1 {
                        run += 1;
                    } else {
                        best = best.max(run);
                        run = 1;
                    }
                }
                masked_x += best.max(run);
            }
            TogglePolicy::Aggressive => {
                let span = list.last().expect("non-empty") - list.first().expect("non-empty") + 1;
                masked_x += list.len();
                lost += span - list.len();
            }
        }
    }

    let leaked_x = xmap.total_x() - masked_x;
    ToggleMaskReport {
        masking_bits,
        canceling_bits: cancel.control_bits(leaked_x),
        masked_x,
        leaked_x,
        lost_observability: lost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xhc_scan::{CellId, ScanConfig, XMapBuilder};

    fn map_with(chain_positions: &[(usize, usize, usize)], patterns: usize) -> XMap {
        // (chain, position, pattern)
        let max_chain = chain_positions
            .iter()
            .map(|&(c, _, _)| c)
            .max()
            .unwrap_or(0);
        let max_pos = chain_positions
            .iter()
            .map(|&(_, p, _)| p)
            .max()
            .unwrap_or(0);
        let cfg = ScanConfig::uniform(max_chain + 1, max_pos + 1);
        let mut b = XMapBuilder::new(cfg, patterns);
        for &(c, pos, pat) in chain_positions {
            b.add_x(CellId::new(c, pos), pat).unwrap();
        }
        b.finish()
    }

    #[test]
    fn conservative_takes_longest_run() {
        // Positions 0,1 and 3,4,5 in one chain: longest run = 3.
        let xmap = map_with(&[(0, 0, 0), (0, 1, 0), (0, 3, 0), (0, 4, 0), (0, 5, 0)], 1);
        let r = toggle_masking(&xmap, XCancelConfig::new(8, 2), TogglePolicy::Conservative);
        assert_eq!(r.masked_x, 3);
        assert_eq!(r.leaked_x, 2);
        assert_eq!(r.lost_observability, 0);
    }

    #[test]
    fn aggressive_masks_all_but_loses_gaps() {
        let xmap = map_with(&[(0, 0, 0), (0, 1, 0), (0, 3, 0), (0, 4, 0), (0, 5, 0)], 1);
        let r = toggle_masking(&xmap, XCancelConfig::new(8, 2), TogglePolicy::Aggressive);
        assert_eq!(r.masked_x, 5);
        assert_eq!(r.leaked_x, 0);
        // Span 0..=5 covers 6 slots for 5 X's -> one non-X lost.
        assert_eq!(r.lost_observability, 1);
    }

    #[test]
    fn control_bits_formula() {
        // L = 6 -> ceil(log2(7)) = 3 address bits; 2 chains, 4 patterns:
        // 4 * 2 * 2 * 3 = 48 bits.
        let cfg = ScanConfig::uniform(2, 6);
        let xmap = XMapBuilder::new(cfg, 4).finish();
        let r = toggle_masking(&xmap, XCancelConfig::new(8, 2), TogglePolicy::Conservative);
        assert_eq!(r.masking_bits, 48);
        assert_eq!(r.masked_x, 0);
        assert_eq!(r.leaked_x, 0);
    }

    #[test]
    fn intra_correlated_map_suits_toggle_masking() {
        // Clustered X's (one contiguous block per pattern) are fully
        // removed by toggle masking with zero loss.
        let mut entries = Vec::new();
        for pat in 0..4 {
            for pos in 2..7 {
                entries.push((0usize, pos, pat));
            }
        }
        let xmap = map_with(&entries, 4);
        let r = toggle_masking(&xmap, XCancelConfig::new(8, 2), TogglePolicy::Conservative);
        assert_eq!(r.masked_x, 20);
        assert_eq!(r.leaked_x, 0);
    }

    #[test]
    fn scattered_map_defeats_conservative_toggle() {
        // Alternating X / non-X positions: runs of length 1 only.
        let entries: Vec<(usize, usize, usize)> = (0..5).map(|i| (0usize, 2 * i, 0usize)).collect();
        let xmap = map_with(&entries, 1);
        let r = toggle_masking(&xmap, XCancelConfig::new(8, 2), TogglePolicy::Conservative);
        assert_eq!(r.masked_x, 1);
        assert_eq!(r.leaked_x, 4);
    }
}
