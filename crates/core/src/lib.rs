//! The paper's contribution: reducing control-bit overhead for the hybrid
//! X-masking / X-canceling MISR architecture via test-pattern partitioning
//! (Kang, Touba, Yang — DAC 2016).
//!
//! Pipeline:
//!
//! 1. [`CorrelationAnalysis`] — per-cell X counts within a pattern subset,
//!    grouped into count classes (§3's inter-correlation analysis);
//! 2. [`PartitionEngine`] — iterative binary partitioning of the pattern
//!    set on inter-correlated pivot cells, gated by the control-bit cost
//!    function (§4, Algorithm 1);
//! 3. [`hybrid_cost`] — the §4 total-control-bit formula
//!    `L·C·#partitions + m·q·leakedX/(m−q)`;
//! 4. [`evaluate_hybrid`] — a full Table-1 row: the proposed method versus
//!    X-masking-only \[5\] and X-canceling-only \[12\], control bits and
//!    normalized test time;
//! 5. [`apply_partition_masks`] — operational gating of real captured
//!    responses, feeding `xhc-misr`'s [`CancelSession`] for end-to-end
//!    validation;
//! 6. [`baselines`] — baseline accounting plus a superset-X-canceling
//!    style comparison point (\[17, 18\]);
//! 7. [`backend`] — the [`PlanBackend`] trait putting the hybrid, both
//!    Table-1 baselines, the superset baseline and a weight-3 X-code
//!    compactor behind one planning API with a uniform
//!    [`BackendReport`].
//!
//! The central invariant, enforced by construction and property-tested: a
//! cell is masked in a partition **only if it captures X under every
//! pattern of that partition**, so no observable response bit is ever
//! lost and fault coverage is preserved without fault simulation.
//!
//! # Examples
//!
//! ```
//! use xhc_core::{evaluate_hybrid, CellSelection};
//! use xhc_misr::XCancelConfig;
//! use xhc_scan::{CellId, ScanConfig, XMapBuilder};
//!
//! // A tiny workload: one inter-correlated cell group.
//! let cfg = ScanConfig::uniform(4, 4);
//! let mut b = XMapBuilder::new(cfg, 16);
//! for p in [0, 2, 4, 6, 8, 10] {
//!     b.add_x(CellId::new(0, 0), p).unwrap();
//!     b.add_x(CellId::new(1, 1), p).unwrap();
//! }
//! let xmap = b.finish();
//!
//! let report = evaluate_hybrid(&xmap, XCancelConfig::new(8, 2), CellSelection::First);
//! // The correlated X's are fully masked by two shared mask words.
//! assert_eq!(report.outcome.leaked_x(), 0);
//! assert!(report.impv_over_masking > 1.0);
//! ```
//!
//! [`CancelSession`]: xhc_misr::CancelSession

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod baselines;
mod correlation;
mod cost;
mod hybrid;
mod partition;
mod schedule;
mod toggle;

pub use backend::{
    all_backends, backend_for, BackendCaps, BackendId, BackendReport, CancelingOnlyBackend,
    HybridBackend, MaskingOnlyBackend, PatternBreakdown, PlanBackend, SupersetBackend,
    WorkloadInput, XCodeBackend,
};
pub use correlation::{
    inter_correlation_stats, intra_correlation_stats, CorrelationAnalysis, InterCorrelationStats,
    IntraCorrelationStats,
};
pub use cost::{hybrid_cost, hybrid_cost_with_masks, HybridCost};
pub use hybrid::{apply_partition_masks, evaluate_hybrid, report_for_outcome, HybridReport};
pub use partition::{
    CellSelection, PartitionEngine, PartitionOutcome, PlanOptions, RoundRecord, SplitStrategy,
};
pub use schedule::{mask_switches, pattern_order, schedule_hybrid, ScheduleOptions, TestSchedule};
pub use toggle::{toggle_masking, ToggleMaskReport, TogglePolicy};
