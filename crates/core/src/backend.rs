//! One planning API over the fleet of compaction backends.
//!
//! The paper's hybrid architecture is one point in a design space of
//! X-tolerant response-compaction schemes. This module puts every scheme
//! the workspace knows behind a single [`PlanBackend`] trait so the CLI,
//! the wire format and the planning daemon can treat them uniformly:
//!
//! | id | scheme | control bits |
//! |----|--------|--------------|
//! | [`BackendId::Hybrid`] | the paper's partitioned masking + X-canceling MISR | `L·C·#partitions + m·q·leakedX/(m−q)` |
//! | [`BackendId::MaskingOnly`] | conventional per-pattern X-masking \[5\] | `L·C·P` |
//! | [`BackendId::CancelingOnly`] | X-canceling MISR only \[12\] | `m·q·totalX/(m−q)` |
//! | [`BackendId::Superset`] | superset-X-canceling clustering \[17, 18\] | per-cluster canceling bits |
//! | [`BackendId::XCode`] | weight-3 X-code combinational compactor (Fujiwara & Colbourn, arXiv:1508.00481) | `0` — pays in lost observability instead |
//!
//! Every backend plans from the same [`WorkloadInput`] (an
//! [`XMap`] plus the MISR configuration, optionally sharing a packed
//! bit-matrix) and fills the same [`BackendReport`]: total control bits,
//! the observed-X account (masked / leaked / lost), a per-pattern
//! breakdown, and — for backends that produce a partition plan — the
//! [`PartitionOutcome`] certificate hook.
//!
//! # Examples
//!
//! ```
//! use xhc_core::{all_backends, BackendId, PlanOptions, WorkloadInput};
//! use xhc_misr::XCancelConfig;
//! use xhc_scan::{CellId, ScanConfig, XMapBuilder};
//!
//! let mut b = XMapBuilder::new(ScanConfig::uniform(4, 4), 8);
//! b.add_x(CellId::new(0, 0), 3).unwrap();
//! let xmap = b.finish();
//! let input = WorkloadInput::new(&xmap, XCancelConfig::new(10, 2));
//!
//! for backend in all_backends() {
//!     let report = backend.plan(&input, &PlanOptions::default());
//!     assert_eq!(report.backend, backend.id());
//!     // The observed-X account always balances.
//!     assert_eq!(report.masked_x + report.leaked_x, xmap.total_x());
//! }
//! ```

use std::collections::HashMap;
use std::fmt;

use crate::baselines::{
    canceling_only_bits, masking_only_bits, superset_canceling_detailed, SupersetConfig,
};
use crate::partition::{PartitionEngine, PartitionOutcome, PlanOptions};
use xhc_bits::XBitMatrix;
use xhc_misr::XCancelConfig;
use xhc_scan::XMap;

/// The stable identifier of a planning backend.
///
/// The lowercase [`name`](BackendId::name) is the token used by
/// `xhybrid plan --backend`, the daemon's `backend=` query parameter and
/// the `GET /v1/backends` listing; the wire format pins one byte per
/// variant (`xhc_wire::backend_code`), with [`BackendId::Hybrid`] at code
/// 0 so default-options requests hash identically to pre-backend builds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BackendId {
    /// The paper's hybrid: partitioned X-masking + X-canceling MISR.
    #[default]
    Hybrid,
    /// Conventional per-pattern X-masking only (baseline \[5\]).
    MaskingOnly,
    /// X-canceling MISR only (baseline \[12\]).
    CancelingOnly,
    /// Superset-X-canceling pattern clustering (\[17, 18\]).
    Superset,
    /// Weight-3 X-code combinational compactor (arXiv:1508.00481).
    XCode,
}

impl BackendId {
    /// Every backend, in capability-listing order (hybrid first).
    pub const ALL: [BackendId; 5] = [
        BackendId::Hybrid,
        BackendId::MaskingOnly,
        BackendId::CancelingOnly,
        BackendId::Superset,
        BackendId::XCode,
    ];

    /// The stable lowercase token (CLI flag value, query parameter,
    /// `GET /v1/backends` id).
    pub fn name(self) -> &'static str {
        match self {
            BackendId::Hybrid => "hybrid",
            BackendId::MaskingOnly => "masking",
            BackendId::CancelingOnly => "canceling",
            BackendId::Superset => "superset",
            BackendId::XCode => "xcode",
        }
    }

    /// Parses a backend token as produced by [`BackendId::name`].
    pub fn parse(s: &str) -> Option<BackendId> {
        BackendId::ALL.into_iter().find(|b| b.name() == s)
    }

    /// The backend's capability flags.
    pub fn caps(self) -> BackendCaps {
        match self {
            BackendId::Hybrid => BackendCaps {
                partitions: true,
                masking: true,
                canceling: true,
                lossless: true,
                uses_matrix: true,
            },
            BackendId::MaskingOnly => BackendCaps {
                partitions: false,
                masking: true,
                canceling: false,
                lossless: true,
                uses_matrix: false,
            },
            BackendId::CancelingOnly => BackendCaps {
                partitions: false,
                masking: false,
                canceling: true,
                lossless: true,
                uses_matrix: false,
            },
            BackendId::Superset => BackendCaps {
                partitions: false,
                masking: false,
                canceling: true,
                lossless: false,
                uses_matrix: false,
            },
            BackendId::XCode => BackendCaps {
                partitions: false,
                masking: false,
                canceling: false,
                lossless: false,
                uses_matrix: false,
            },
        }
    }
}

impl fmt::Display for BackendId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What a backend can and cannot do — the capability flags behind
/// `GET /v1/backends`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackendCaps {
    /// Produces a partition plan (so a [`PartitionOutcome`] rides in the
    /// report and a plan certificate can be derived from it).
    pub partitions: bool,
    /// Gates responses with per-pattern (or per-partition) mask words.
    pub masking: bool,
    /// Feeds an X-canceling MISR (so `m`/`q` matter to its cost).
    pub canceling: bool,
    /// Preserves the observability of every non-X response bit.
    pub lossless: bool,
    /// Benefits from a shared packed `cells × patterns` bit-matrix
    /// ([`WorkloadInput::matrix`]); the serve race hands the pooled build
    /// only to backends that claim it.
    pub uses_matrix: bool,
}

/// Everything a backend plans from: the workload plus the MISR
/// configuration, with an optional pre-packed bit-matrix for backends
/// whose [`BackendCaps::uses_matrix`] is set.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadInput<'a> {
    /// The X-location map to plan over.
    pub xmap: &'a XMap,
    /// The X-canceling MISR configuration (ignored by backends whose
    /// [`BackendCaps::canceling`] is false).
    pub cancel: XCancelConfig,
    /// An already-packed `cells × patterns` matrix for `xmap`, shared by
    /// the daemon's `MatrixPool` so one build serves many backends. Must
    /// have been packed from `xmap`; `None` lets the backend build its
    /// own if it needs one.
    pub matrix: Option<&'a XBitMatrix>,
}

impl<'a> WorkloadInput<'a> {
    /// An input with no shared matrix.
    pub fn new(xmap: &'a XMap, cancel: XCancelConfig) -> Self {
        WorkloadInput {
            xmap,
            cancel,
            matrix: None,
        }
    }

    /// Attaches a shared packed matrix (see [`WorkloadInput::matrix`]).
    pub fn with_matrix(mut self, matrix: &'a XBitMatrix) -> Self {
        self.matrix = Some(matrix);
        self
    }
}

/// One pattern's slice of a backend's account.
#[derive(Debug, Clone, PartialEq)]
pub struct PatternBreakdown {
    /// The pattern index.
    pub pattern: usize,
    /// X's this pattern's responses carry.
    pub total_x: usize,
    /// X's removed before the observation path (masked or clustered
    /// away).
    pub masked_x: usize,
    /// X's entering the observation path (MISR or compactor).
    pub leaked_x: usize,
    /// This pattern's share of the backend's control bits. Shares sum to
    /// [`BackendReport::control_bits`] (up to float rounding).
    pub control_bits: f64,
}

/// The uniform result every backend returns: the control-bit total, the
/// observed-X account, a per-pattern breakdown, and (for partitioning
/// backends) the certificate hook.
#[derive(Debug, Clone, PartialEq)]
pub struct BackendReport {
    /// Which backend produced this report.
    pub backend: BackendId,
    /// Total control bits the scheme spends on this workload — the
    /// paper's comparison axis.
    pub control_bits: f64,
    /// X's removed before the observation path. With
    /// [`BackendReport::leaked_x`] this partitions the map's total X
    /// count: `masked_x + leaked_x == xmap.total_x()` for every backend.
    pub masked_x: usize,
    /// X's entering the observation path (the MISR, or the X-code
    /// compactor's outputs).
    pub leaked_x: usize,
    /// Non-X response bits whose observability the scheme sacrifices
    /// (0 for lossless backends; the superset baseline and the X-code
    /// compactor pay here instead of in control bits).
    pub lost_observability: usize,
    /// Per-pattern account, index-aligned with the pattern set.
    pub per_pattern: Vec<PatternBreakdown>,
    /// The certificate hook: the partition plan behind the numbers, for
    /// backends whose [`BackendCaps::partitions`] is set. `xhc-wire` can
    /// encode it and derive a checkable [`PlanCertificate`] from it.
    ///
    /// [`PlanCertificate`]: https://docs.rs/xhc-wire
    pub outcome: Option<PartitionOutcome>,
}

/// A planning backend: one X-tolerant compaction scheme, planned from an
/// [`XMap`] into a uniform [`BackendReport`].
///
/// Implementations are stateless unit structs — obtain them with
/// [`backend_for`] or [`all_backends`] rather than constructing them.
pub trait PlanBackend: Sync {
    /// The backend's stable identifier.
    fn id(&self) -> BackendId;

    /// The backend's capability flags (defaults to the id's table).
    fn caps(&self) -> BackendCaps {
        self.id().caps()
    }

    /// Plans the workload and returns the uniform report.
    ///
    /// `opts` carries the engine knobs; backends that run no partition
    /// engine ignore everything except what their documentation names.
    fn plan(&self, input: &WorkloadInput<'_>, opts: &PlanOptions) -> BackendReport;
}

/// The planning backend for [`BackendId::Hybrid`]: the paper's partition
/// engine, reported through the uniform interface.
#[derive(Debug, Clone, Copy, Default)]
pub struct HybridBackend;

impl HybridBackend {
    /// Accounts an already-computed [`PartitionOutcome`] into the uniform
    /// report, without re-running the engine. `outcome` must have been
    /// produced from `xmap` with `cancel` — the daemon's race endpoint
    /// uses this to report a cached plan under the same accounting as a
    /// fresh [`PlanBackend::plan`] call.
    pub fn report_for(
        xmap: &XMap,
        cancel: XCancelConfig,
        outcome: PartitionOutcome,
    ) -> BackendReport {
        let word_bits = xmap.config().mask_word_bits() as f64;
        let total_cells = xmap.config().total_cells();
        let x_per_pattern = xmap.x_per_pattern();
        // Per-partition masked-cell count: every masked cell is X under
        // every member pattern, so it masks exactly one X per pattern.
        let masked_cells: Vec<usize> = outcome
            .masks
            .iter()
            .map(|mask| (0..total_cells).filter(|&i| mask.masks(i)).count())
            .collect();
        let mut per_pattern: Vec<PatternBreakdown> = Vec::with_capacity(xmap.num_patterns());
        for (p, &total_x) in x_per_pattern.iter().enumerate() {
            let part = outcome
                .partitions
                .iter()
                .position(|set| set.contains(p))
                .expect("plan covers every pattern");
            let masked = masked_cells[part];
            let leaked = total_x - masked;
            // The pattern's share: an equal slice of its partition's mask
            // word plus the canceling cost of its own leaked X's.
            let share =
                word_bits / outcome.partitions[part].card() as f64 + cancel.control_bits(leaked);
            per_pattern.push(PatternBreakdown {
                pattern: p,
                total_x,
                masked_x: masked,
                leaked_x: leaked,
                control_bits: share,
            });
        }
        BackendReport {
            backend: BackendId::Hybrid,
            control_bits: outcome.cost.total(),
            masked_x: outcome.cost.masked_x,
            leaked_x: outcome.cost.leaked_x,
            lost_observability: 0,
            per_pattern,
            outcome: Some(outcome),
        }
    }
}

impl PlanBackend for HybridBackend {
    fn id(&self) -> BackendId {
        BackendId::Hybrid
    }

    /// Runs [`PartitionEngine`] with `opts` (honouring every knob) and
    /// derives the account from the outcome via
    /// [`HybridBackend::report_for`]. The shared matrix, when present,
    /// feeds [`PartitionEngine::run_with_matrix`].
    fn plan(&self, input: &WorkloadInput<'_>, opts: &PlanOptions) -> BackendReport {
        let engine = PartitionEngine::with_options(input.cancel, *opts);
        let outcome = engine.run_with_matrix(input.xmap, input.matrix);
        HybridBackend::report_for(input.xmap, input.cancel, outcome)
    }
}

/// The planning backend for [`BackendId::MaskingOnly`]: baseline \[5\],
/// one `L·C` mask word per pattern, every X masked, nothing leaks.
#[derive(Debug, Clone, Copy, Default)]
pub struct MaskingOnlyBackend;

impl PlanBackend for MaskingOnlyBackend {
    fn id(&self) -> BackendId {
        BackendId::MaskingOnly
    }

    /// Pure accounting (`opts` is ignored): control bits are
    /// [`masking_only_bits`], each pattern pays one mask word.
    fn plan(&self, input: &WorkloadInput<'_>, _opts: &PlanOptions) -> BackendReport {
        let xmap = input.xmap;
        let word_bits = xmap.config().mask_word_bits() as f64;
        let per_pattern = xmap
            .x_per_pattern()
            .into_iter()
            .enumerate()
            .map(|(p, total_x)| PatternBreakdown {
                pattern: p,
                total_x,
                masked_x: total_x,
                leaked_x: 0,
                control_bits: word_bits,
            })
            .collect();
        BackendReport {
            backend: BackendId::MaskingOnly,
            control_bits: masking_only_bits(xmap.config(), xmap.num_patterns()) as f64,
            masked_x: xmap.total_x(),
            leaked_x: 0,
            lost_observability: 0,
            per_pattern,
            outcome: None,
        }
    }
}

/// The planning backend for [`BackendId::CancelingOnly`]: baseline
/// \[12\], every X shifts into the X-canceling MISR.
#[derive(Debug, Clone, Copy, Default)]
pub struct CancelingOnlyBackend;

impl PlanBackend for CancelingOnlyBackend {
    fn id(&self) -> BackendId {
        BackendId::CancelingOnly
    }

    /// Pure accounting (`opts` is ignored): control bits are
    /// [`canceling_only_bits`], split per pattern by its own X count.
    fn plan(&self, input: &WorkloadInput<'_>, _opts: &PlanOptions) -> BackendReport {
        let xmap = input.xmap;
        let per_pattern = xmap
            .x_per_pattern()
            .into_iter()
            .enumerate()
            .map(|(p, total_x)| PatternBreakdown {
                pattern: p,
                total_x,
                masked_x: 0,
                leaked_x: total_x,
                control_bits: input.cancel.control_bits(total_x),
            })
            .collect();
        BackendReport {
            backend: BackendId::CancelingOnly,
            control_bits: canceling_only_bits(input.cancel, xmap.total_x()),
            masked_x: 0,
            leaked_x: xmap.total_x(),
            lost_observability: 0,
            per_pattern,
            outcome: None,
        }
    }
}

/// The merge slack the superset backend plans with. Mirrors the
/// `examples/baseline_tour.rs` setting; the raw
/// [`superset_canceling`](crate::baselines::superset_canceling) function
/// remains available for other slacks.
pub const SUPERSET_BACKEND_SLACK: f64 = 0.25;

/// The planning backend for [`BackendId::Superset`]: greedy
/// superset-X-canceling clustering at [`SUPERSET_BACKEND_SLACK`].
#[derive(Debug, Clone, Copy, Default)]
pub struct SupersetBackend;

impl PlanBackend for SupersetBackend {
    fn id(&self) -> BackendId {
        BackendId::Superset
    }

    /// Pure accounting (`opts` is ignored): clusters patterns at the
    /// fixed slack and charges each pattern an equal slice of its
    /// cluster's canceling bits. Every X reaches the MISR (`leaked`);
    /// the merge's sacrificed non-X bits land in `lost_observability`.
    fn plan(&self, input: &WorkloadInput<'_>, _opts: &PlanOptions) -> BackendReport {
        let xmap = input.xmap;
        let detail = superset_canceling_detailed(
            xmap,
            SupersetConfig {
                cancel: input.cancel,
                merge_slack: SUPERSET_BACKEND_SLACK,
            },
        );
        let per_pattern = xmap
            .x_per_pattern()
            .into_iter()
            .enumerate()
            .map(|(p, total_x)| {
                let share = match detail.cluster_of[p] {
                    Some(ci) => detail.cluster_bits[ci] / detail.cluster_members[ci] as f64,
                    None => 0.0,
                };
                PatternBreakdown {
                    pattern: p,
                    total_x,
                    masked_x: 0,
                    leaked_x: total_x,
                    control_bits: share,
                }
            })
            .collect();
        BackendReport {
            backend: BackendId::Superset,
            control_bits: detail.report.control_bits(),
            masked_x: 0,
            leaked_x: xmap.total_x(),
            lost_observability: detail.report.lost_observability,
            per_pattern,
            outcome: None,
        }
    }
}

/// The planning backend for [`BackendId::XCode`]: a weight-3 X-code
/// combinational compactor in the style of Fujiwara & Colbourn
/// (arXiv:1508.00481).
///
/// Each of the `C` scan chains feeds exactly three of `j` XOR outputs,
/// where `j` is the smallest width with `C(j,3) >= C` and every chain
/// gets a *distinct* 3-subset. Because two distinct 3-subsets share at
/// most two outputs, any single X per shift cycle leaves every other
/// chain at least one clean output — the classic 1-X-tolerance of
/// X-codes — with **zero** per-pattern control bits. The price appears
/// on the other axis: in a cycle with several X's, a chain whose three
/// outputs are all dirtied by X columns becomes unobservable, and
/// [`BackendReport::lost_observability`] counts exactly those
/// (pattern, cycle, chain) positions.
#[derive(Debug, Clone, Copy, Default)]
pub struct XCodeBackend;

/// The minimal output width for a weight-3 X-code over `chains` inputs:
/// the smallest `j >= 3` with `C(j,3) >= chains`.
pub fn xcode_output_width(chains: usize) -> usize {
    let mut j = 3usize;
    while j * (j - 1) * (j - 2) / 6 < chains {
        j += 1;
    }
    j
}

/// The distinct weight-3 columns assigned to chains `0..chains`, in
/// lexicographic order over output triples of `xcode_output_width`.
fn xcode_columns(chains: usize) -> Vec<[u16; 3]> {
    let j = xcode_output_width(chains) as u16;
    let mut columns = Vec::with_capacity(chains);
    'outer: for a in 0..j {
        for b in (a + 1)..j {
            for c in (b + 1)..j {
                columns.push([a, b, c]);
                if columns.len() == chains {
                    break 'outer;
                }
            }
        }
    }
    columns
}

impl PlanBackend for XCodeBackend {
    fn id(&self) -> BackendId {
        BackendId::XCode
    }

    /// Plans the compactor (`opts` and the MISR config are ignored —
    /// there is no MISR): zero control bits, every X leaks into the
    /// outputs, and the lost-observability sweep runs only over cycles
    /// that actually carry more than one X.
    fn plan(&self, input: &WorkloadInput<'_>, _opts: &PlanOptions) -> BackendReport {
        let xmap = input.xmap;
        let config = xmap.config();
        let chains = config.num_chains();
        let columns = xcode_columns(chains);
        let column_of: HashMap<[u16; 3], usize> = columns
            .iter()
            .enumerate()
            .map(|(chain, &col)| (col, chain))
            .collect();

        // Group the map's X's by (pattern, cycle): only those cycles can
        // dirty outputs, so the sweep is O(total_x), not O(response bits).
        let mut x_chains: HashMap<(usize, usize), Vec<usize>> = HashMap::new();
        for (cell, xs) in xmap.iter() {
            for p in xs.iter() {
                x_chains
                    .entry((p, cell.position as usize))
                    .or_default()
                    .push(cell.chain as usize);
            }
        }

        let mut lost_total = 0usize;
        for (&(_, cycle), dirty_chains) in &x_chains {
            if dirty_chains.len() < 2 {
                // Weight-3 distinct columns: one X can cover at most two
                // of any other chain's three outputs.
                continue;
            }
            let mut dirty: Vec<u16> = dirty_chains.iter().flat_map(|&ch| columns[ch]).collect();
            dirty.sort_unstable();
            dirty.dedup();
            let d = dirty.len();
            // A chain is lost iff its whole column lies inside the dirty
            // set. Enumerate whichever is smaller: the C(d,3) triples of
            // dirty outputs, or the chains themselves.
            let triples = d * (d - 1) * (d - 2) / 6;
            let lost_here: usize = if triples <= chains {
                let mut lost = 0usize;
                for ai in 0..d {
                    for bi in (ai + 1)..d {
                        for ci in (bi + 1)..d {
                            let col = [dirty[ai], dirty[bi], dirty[ci]];
                            if let Some(&chain) = column_of.get(&col) {
                                if cycle < config.chain_len(chain) && !dirty_chains.contains(&chain)
                                {
                                    lost += 1;
                                }
                            }
                        }
                    }
                }
                lost
            } else {
                (0..chains)
                    .filter(|&chain| {
                        cycle < config.chain_len(chain)
                            && !dirty_chains.contains(&chain)
                            && columns[chain]
                                .iter()
                                .all(|o| dirty.binary_search(o).is_ok())
                    })
                    .count()
            };
            lost_total += lost_here;
        }

        let x_per_pattern = xmap.x_per_pattern();
        let per_pattern = x_per_pattern
            .into_iter()
            .enumerate()
            .map(|(p, total_x)| PatternBreakdown {
                pattern: p,
                total_x,
                masked_x: 0,
                leaked_x: total_x,
                control_bits: 0.0,
            })
            .collect();
        BackendReport {
            backend: BackendId::XCode,
            control_bits: 0.0,
            masked_x: 0,
            leaked_x: xmap.total_x(),
            lost_observability: lost_total,
            per_pattern,
            outcome: None,
        }
    }
}

/// The backend implementing `id`, as a shared static.
pub fn backend_for(id: BackendId) -> &'static dyn PlanBackend {
    match id {
        BackendId::Hybrid => &HybridBackend,
        BackendId::MaskingOnly => &MaskingOnlyBackend,
        BackendId::CancelingOnly => &CancelingOnlyBackend,
        BackendId::Superset => &SupersetBackend,
        BackendId::XCode => &XCodeBackend,
    }
}

/// Every backend, in [`BackendId::ALL`] order.
pub fn all_backends() -> [&'static dyn PlanBackend; 5] {
    [
        &HybridBackend,
        &MaskingOnlyBackend,
        &CancelingOnlyBackend,
        &SupersetBackend,
        &XCodeBackend,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use xhc_scan::{CellId, ScanConfig, XMapBuilder};

    fn fig4_xmap() -> XMap {
        let cfg = ScanConfig::uniform(5, 3);
        let mut b = XMapBuilder::new(cfg, 8);
        for p in [0, 3, 4, 5] {
            b.add_x(CellId::new(0, 0), p).unwrap();
            b.add_x(CellId::new(1, 0), p).unwrap();
            b.add_x(CellId::new(2, 0), p).unwrap();
        }
        for p in [0, 4] {
            b.add_x(CellId::new(1, 2), p).unwrap();
        }
        for p in [0, 1, 2, 3, 4, 6, 7] {
            b.add_x(CellId::new(3, 2), p).unwrap();
        }
        for p in [0, 1, 3, 4, 6, 7] {
            b.add_x(CellId::new(4, 1), p).unwrap();
        }
        b.add_x(CellId::new(4, 2), 5).unwrap();
        b.finish()
    }

    #[test]
    fn ids_name_parse_roundtrip() {
        for id in BackendId::ALL {
            assert_eq!(BackendId::parse(id.name()), Some(id));
            assert_eq!(id.to_string(), id.name());
            assert_eq!(backend_for(id).id(), id);
            assert_eq!(backend_for(id).caps(), id.caps());
        }
        assert_eq!(BackendId::parse("nope"), None);
        assert_eq!(BackendId::default(), BackendId::Hybrid);
    }

    #[test]
    fn every_report_balances_the_x_account() {
        let xmap = fig4_xmap();
        let input = WorkloadInput::new(&xmap, XCancelConfig::new(10, 2));
        for backend in all_backends() {
            let r = backend.plan(&input, &PlanOptions::default());
            assert_eq!(r.backend, backend.id());
            assert_eq!(r.masked_x + r.leaked_x, xmap.total_x(), "{}", r.backend);
            assert_eq!(r.per_pattern.len(), xmap.num_patterns());
            let masked: usize = r.per_pattern.iter().map(|p| p.masked_x).sum();
            let leaked: usize = r.per_pattern.iter().map(|p| p.leaked_x).sum();
            assert_eq!(masked, r.masked_x, "{}", r.backend);
            assert_eq!(leaked, r.leaked_x, "{}", r.backend);
            let share_sum: f64 = r.per_pattern.iter().map(|p| p.control_bits).sum();
            // 1e-3 tolerance: the superset report's total is rounded to
            // milli-bits on the wire-friendly x1000 fixed point.
            assert!(
                (share_sum - r.control_bits).abs() < 1e-3,
                "{}: per-pattern shares sum to {share_sum}, report says {}",
                r.backend,
                r.control_bits
            );
            assert_eq!(r.outcome.is_some(), backend.caps().partitions);
            if backend.caps().lossless {
                assert_eq!(r.lost_observability, 0, "{}", r.backend);
            }
        }
    }

    #[test]
    fn hybrid_backend_matches_the_engine() {
        let xmap = fig4_xmap();
        let input = WorkloadInput::new(&xmap, XCancelConfig::new(10, 2));
        let r = HybridBackend.plan(&input, &PlanOptions::default());
        assert!((r.control_bits - 57.5).abs() < 1e-9);
        assert_eq!(r.masked_x, 23);
        assert_eq!(r.leaked_x, 5);
        let outcome = r.outcome.expect("hybrid carries its plan");
        assert_eq!(outcome.partitions.len(), 3);
    }

    #[test]
    fn hybrid_backend_shares_a_packed_matrix() {
        use crate::partition::SplitStrategy;
        let xmap = fig4_xmap();
        let matrix = xmap.to_bitmatrix();
        let opts = PlanOptions {
            strategy: SplitStrategy::BestCost,
            ..PlanOptions::default()
        };
        let cancel = XCancelConfig::new(10, 2);
        let shared = HybridBackend.plan(
            &WorkloadInput::new(&xmap, cancel).with_matrix(&matrix),
            &opts,
        );
        let owned = HybridBackend.plan(&WorkloadInput::new(&xmap, cancel), &opts);
        assert_eq!(shared, owned);
    }

    #[test]
    fn baseline_backends_match_fig4_numbers() {
        let xmap = fig4_xmap();
        let input = WorkloadInput::new(&xmap, XCancelConfig::new(10, 2));
        let opts = PlanOptions::default();
        let masking = MaskingOnlyBackend.plan(&input, &opts);
        assert_eq!(masking.control_bits, 120.0);
        assert_eq!(masking.leaked_x, 0);
        let canceling = CancelingOnlyBackend.plan(&input, &opts);
        assert!((canceling.control_bits - 70.0).abs() < 1e-9);
        assert_eq!(canceling.masked_x, 0);
    }

    #[test]
    fn xcode_width_is_minimal() {
        assert_eq!(xcode_output_width(1), 3);
        assert_eq!(xcode_output_width(4), 4);
        assert_eq!(xcode_output_width(5), 5);
        assert_eq!(xcode_output_width(10), 5);
        assert_eq!(xcode_output_width(11), 6);
        for chains in 1..200 {
            let j = xcode_output_width(chains);
            assert!(j * (j - 1) * (j - 2) / 6 >= chains);
            if j > 3 {
                let j1 = j - 1;
                assert!(j1 * (j1 - 1) * (j1 - 2) / 6 < chains);
            }
            let cols = xcode_columns(chains);
            assert_eq!(cols.len(), chains);
            let distinct: std::collections::HashSet<_> = cols.iter().collect();
            assert_eq!(distinct.len(), chains, "columns must be distinct");
        }
    }

    #[test]
    fn xcode_tolerates_single_x_cycles() {
        // One X per (pattern, cycle) everywhere: nothing is lost.
        let cfg = ScanConfig::uniform(6, 4);
        let mut b = XMapBuilder::new(cfg, 5);
        for p in 0..5 {
            b.add_x(CellId::new(p % 6, p % 4), p).unwrap();
        }
        let xmap = b.finish();
        let r = XCodeBackend.plan(
            &WorkloadInput::new(&xmap, XCancelConfig::paper_default()),
            &PlanOptions::default(),
        );
        assert_eq!(r.control_bits, 0.0);
        assert_eq!(r.lost_observability, 0);
        assert_eq!(r.leaked_x, 5);
    }

    #[test]
    fn xcode_loses_fully_covered_chains() {
        // 4 chains -> j = 4, columns are the four 3-subsets of {0,1,2,3}.
        // X's on chains 0, 1, 2 in the same cycle dirty all four outputs,
        // so chain 3 (non-X there) is unobservable in that cycle.
        let cfg = ScanConfig::uniform(4, 2);
        let mut b = XMapBuilder::new(cfg, 1);
        for chain in 0..3 {
            b.add_x(CellId::new(chain, 0), 0).unwrap();
        }
        let xmap = b.finish();
        let r = XCodeBackend.plan(
            &WorkloadInput::new(&xmap, XCancelConfig::paper_default()),
            &PlanOptions::default(),
        );
        assert_eq!(r.lost_observability, 1);
    }
}
