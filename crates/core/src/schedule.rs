//! Cycle-accurate test-application scheduling.
//!
//! The paper reports *normalized* test time via the closed-form model of
//! \[11\] (`1 + n·x·q/(m−q)`). This module complements it with an explicit
//! cycle schedule: shift cycles, capture cycles, per-partition mask-word
//! reloads and per-halt X-free extraction cycles — and shows the closed
//! form drops out of the schedule under the paper's assumptions.

use crate::partition::PartitionOutcome;
use xhc_misr::XCancelConfig;
use xhc_scan::{AteConfig, ScanConfig};

/// A cycle-level account of applying a pattern set through the hybrid
/// architecture.
#[derive(Debug, Clone, PartialEq)]
pub struct TestSchedule {
    /// Scan shift cycles: `P·L` plus the final unload.
    pub shift_cycles: usize,
    /// Capture cycles (one per pattern).
    pub capture_cycles: usize,
    /// Cycles spent reloading partition mask words. Zero when reloads
    /// overlap shifting (the ATE streams the next mask word over control
    /// channels while scan data shifts — the same channel use that
    /// conventional per-pattern X-masking relies on).
    pub mask_reload_cycles: usize,
    /// Scan-halt cycles for X-free extraction: `q` selective-XOR cycles
    /// per halt (\[11\]'s time-multiplexed model).
    pub extraction_cycles: usize,
    /// Cycles streaming selective-XOR select bits while halted (zero when
    /// overlapped with the preceding shift).
    pub select_transfer_cycles: usize,
    /// Number of scan halts.
    pub halts: usize,
    /// Number of mask-word loads (= partition switches + 1).
    pub mask_loads: usize,
}

impl TestSchedule {
    /// Total cycles.
    pub fn total_cycles(&self) -> usize {
        self.shift_cycles
            + self.capture_cycles
            + self.mask_reload_cycles
            + self.extraction_cycles
            + self.select_transfer_cycles
    }

    /// Test time normalized to pure shifting+capture (the paper's
    /// X-masking baseline = 1.0).
    pub fn normalized(&self) -> f64 {
        let baseline = (self.shift_cycles + self.capture_cycles) as f64;
        self.total_cycles() as f64 / baseline
    }
}

/// Scheduling assumptions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduleOptions {
    /// Stream each partition's mask word during the previous pattern's
    /// shift (true = no dedicated reload cycles, the paper's assumption).
    pub overlap_mask_reload: bool,
    /// Stream the `m·q` select bits of each halt during the preceding
    /// shift (true = only the `q` XOR cycles cost time, matching \[11\]).
    pub overlap_select_transfer: bool,
}

impl Default for ScheduleOptions {
    /// The paper's assumptions: control data overlaps shifting; only the
    /// selective-XOR cycles halt the scan clock.
    fn default() -> Self {
        ScheduleOptions {
            overlap_mask_reload: true,
            overlap_select_transfer: true,
        }
    }
}

/// Builds the schedule for applying every pattern partition-by-partition
/// (each mask word loads once) with the residual X's handled by a
/// time-multiplexed X-canceling MISR.
///
/// # Examples
///
/// ```
/// use xhc_core::{schedule_hybrid, PartitionEngine, ScheduleOptions};
/// use xhc_misr::XCancelConfig;
/// use xhc_scan::{AteConfig, CellId, ScanConfig, XMapBuilder};
///
/// let cfg = ScanConfig::uniform(5, 3);
/// let mut b = XMapBuilder::new(cfg, 8);
/// for p in 0..4 { b.add_x(CellId::new(0, 0), p).unwrap(); }
/// let xmap = b.finish();
/// let cancel = XCancelConfig::new(10, 2);
/// let outcome = PartitionEngine::new(cancel).run(&xmap);
///
/// let schedule = schedule_hybrid(
///     xmap.config(), xmap.num_patterns(), &outcome, cancel,
///     AteConfig::new(32), ScheduleOptions::default(),
/// );
/// assert!(schedule.normalized() >= 1.0);
/// ```
pub fn schedule_hybrid(
    scan: &ScanConfig,
    num_patterns: usize,
    outcome: &PartitionOutcome,
    cancel: XCancelConfig,
    ate: AteConfig,
    options: ScheduleOptions,
) -> TestSchedule {
    let l = scan.max_chain_len();
    let shift_cycles = num_patterns * l + l; // pipelined load/unload + final
    let capture_cycles = num_patterns;

    let mask_loads = outcome.partitions.len();
    let mask_reload_cycles = if options.overlap_mask_reload {
        0
    } else {
        mask_loads * ate.transfer_cycles(scan.mask_word_bits())
    };

    let budget = cancel.m() - cancel.q();
    let halts = outcome.leaked_x().div_ceil(budget.max(1));
    let extraction_cycles = halts * cancel.q();
    let select_transfer_cycles = if options.overlap_select_transfer {
        0
    } else {
        halts * ate.transfer_cycles(cancel.m() * cancel.q())
    };

    TestSchedule {
        shift_cycles,
        capture_cycles,
        mask_reload_cycles,
        extraction_cycles,
        select_transfer_cycles,
        halts,
        mask_loads,
    }
}

/// The pattern application order implied by an outcome: partitions are
/// applied contiguously (so each mask word loads exactly once), patterns
/// in ascending order inside each partition.
pub fn pattern_order(outcome: &PartitionOutcome) -> Vec<usize> {
    let mut order = Vec::new();
    for part in &outcome.partitions {
        order.extend(part.iter());
    }
    order
}

/// How many mask-word loads an arbitrary application order needs: one per
/// contiguous run of same-partition patterns.
///
/// # Panics
///
/// Panics if a pattern belongs to no partition.
pub fn mask_switches(order: &[usize], outcome: &PartitionOutcome) -> usize {
    let part_of = |p: usize| {
        outcome
            .partitions
            .iter()
            .position(|s| s.contains(p))
            .unwrap_or_else(|| panic!("pattern {p} belongs to no partition"))
    };
    let mut switches = 0;
    let mut last = None;
    for &p in order {
        let part = part_of(p);
        if last != Some(part) {
            switches += 1;
            last = Some(part);
        }
    }
    switches
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::PartitionEngine;
    use xhc_scan::{CellId, XMapBuilder};

    fn fig4_outcome() -> (xhc_scan::XMap, PartitionOutcome, XCancelConfig) {
        let cfg = ScanConfig::uniform(5, 3);
        let mut b = XMapBuilder::new(cfg, 8);
        for p in [0, 3, 4, 5] {
            b.add_x(CellId::new(0, 0), p).unwrap();
            b.add_x(CellId::new(1, 0), p).unwrap();
            b.add_x(CellId::new(2, 0), p).unwrap();
        }
        for p in [0, 4] {
            b.add_x(CellId::new(1, 2), p).unwrap();
        }
        for p in [0, 1, 2, 3, 4, 6, 7] {
            b.add_x(CellId::new(3, 2), p).unwrap();
        }
        for p in [0, 1, 3, 4, 6, 7] {
            b.add_x(CellId::new(4, 1), p).unwrap();
        }
        b.add_x(CellId::new(4, 2), 5).unwrap();
        let xmap = b.finish();
        let cancel = XCancelConfig::new(10, 2);
        let outcome = PartitionEngine::new(cancel).run(&xmap);
        (xmap, outcome, cancel)
    }

    #[test]
    fn schedule_breakdown_fig4() {
        let (xmap, outcome, cancel) = fig4_outcome();
        let s = schedule_hybrid(
            xmap.config(),
            8,
            &outcome,
            cancel,
            AteConfig::new(32),
            ScheduleOptions::default(),
        );
        assert_eq!(s.shift_cycles, 8 * 3 + 3);
        assert_eq!(s.capture_cycles, 8);
        assert_eq!(s.mask_loads, 3);
        // 5 leaked X's, budget m-q = 8 -> 1 halt, q = 2 XOR cycles.
        assert_eq!(s.halts, 1);
        assert_eq!(s.extraction_cycles, 2);
        assert_eq!(s.mask_reload_cycles, 0);
        assert!(s.normalized() > 1.0);
    }

    #[test]
    fn non_overlapped_costs_more() {
        let (xmap, outcome, cancel) = fig4_outcome();
        let fast = schedule_hybrid(
            xmap.config(),
            8,
            &outcome,
            cancel,
            AteConfig::new(32),
            ScheduleOptions::default(),
        );
        let slow = schedule_hybrid(
            xmap.config(),
            8,
            &outcome,
            cancel,
            AteConfig::new(32),
            ScheduleOptions {
                overlap_mask_reload: false,
                overlap_select_transfer: false,
            },
        );
        assert!(slow.total_cycles() > fast.total_cycles());
        assert!(slow.mask_reload_cycles > 0);
        assert!(slow.select_transfer_cycles > 0);
    }

    #[test]
    fn schedule_matches_closed_form_at_scale() {
        // With q cycles per halt and halts = X/(m-q), the normalized time
        // approaches 1 + n·x·q/(m−q) for L >> 1 (the [11] formula the
        // paper uses in §5).
        let scan = ScanConfig::balanced(36_075, 75);
        let cancel = XCancelConfig::paper_default();
        let patterns = 3000;
        let leaked = 1_340_000usize; // ~1.24% residual density
                                     // Build a fake outcome via direct fields: use the engine on an
                                     // empty map, then override leak accounting through a crafted map
                                     // is cumbersome; instead compute the schedule arithmetic directly.
        let l = scan.max_chain_len();
        let shift = patterns * l + l;
        let halts = leaked.div_ceil(cancel.m() - cancel.q());
        let extraction = halts * cancel.q();
        let normalized = (shift + patterns + extraction) as f64 / (shift + patterns) as f64;
        let x_density = leaked as f64 / (scan.total_cells() * patterns) as f64;
        let closed_form = cancel.normalized_test_time(scan.num_chains(), x_density);
        assert!(
            (normalized - closed_form).abs() < 0.01,
            "schedule {normalized} vs closed form {closed_form}"
        );
    }

    #[test]
    fn pattern_order_and_switches() {
        let (_, outcome, _) = fig4_outcome();
        let order = pattern_order(&outcome);
        assert_eq!(order.len(), 8);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..8).collect::<Vec<_>>());
        // Partition-contiguous order: loads == #partitions.
        assert_eq!(mask_switches(&order, &outcome), 3);
        // Ascending pattern order interleaves partitions: more switches.
        let naive: Vec<usize> = (0..8).collect();
        assert!(mask_switches(&naive, &outcome) > 3);
    }
}
