//! The pattern-partitioning algorithm (the paper's §4, Algorithm 1).

use crate::correlation::CorrelationAnalysis;
use crate::cost::{hybrid_cost_with_masks, HybridCost};
use xhc_bits::{PatternSet, XBitMatrix};
use xhc_misr::{MaskWord, XCancelConfig};
use xhc_prng::{SliceRandom, XhcRng};
use xhc_scan::XMap;

/// How the engine picks the pivot scan cell within the chosen count class.
///
/// The paper "randomly select\[s\] one of 3 scan cells"; thanks to
/// inter-correlation the class members usually share the same X pattern
/// set, so the choice rarely matters — the ablation bench quantifies this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellSelection {
    /// The class member with the lowest linear index (deterministic).
    First,
    /// A seeded random class member (deterministic per seed).
    Seeded(u64),
    /// The class member with the most X's over the *whole* pattern set
    /// (a globally-informed tie-break).
    GlobalMaxX,
}

/// How the engine chooses *which* split to attempt each round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SplitStrategy {
    /// The paper's rule: the pivot class with the most cells, over all
    /// partitions (ties: higher X count, lower partition index).
    #[default]
    LargestClass,
    /// An extension beyond the paper: evaluate the cost of splitting on a
    /// representative of *every* count class (including singletons) in
    /// every partition and take the cheapest. One extra analysis pass per
    /// candidate; can beat the greedy rule on weakly-correlated profiles.
    BestCost,
}

/// One accepted partitioning round.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundRecord {
    /// 1-based round number.
    pub round: usize,
    /// Index (at the time of the split) of the partition that was split.
    pub split_partition: usize,
    /// Linear index of the pivot scan cell.
    pub pivot_cell: usize,
    /// The pivot class's X count.
    pub class_count: usize,
    /// The pivot class's size (number of cells).
    pub class_size: usize,
    /// Total cost after the split.
    pub cost_after: HybridCost,
}

/// The result of running the partitioning engine.
///
/// Plain data end to end (pattern sets, mask words, cost records), so a
/// plan can be serialized, content-addressed and compared bit-for-bit —
/// `xhc-wire` round-trips it and `xhc-serve` caches it by content hash.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionOutcome {
    /// Final partitions (each a set of pattern indices; disjoint, covering
    /// all patterns).
    pub partitions: Vec<PatternSet>,
    /// The fault-coverage-safe mask word of each partition.
    pub masks: Vec<MaskWord>,
    /// Final cost.
    pub cost: HybridCost,
    /// Cost before any split (a single partition over all patterns).
    pub initial_cost: HybridCost,
    /// Accepted rounds, in order.
    pub rounds: Vec<RoundRecord>,
}

impl PartitionOutcome {
    /// X's removed by masking.
    pub fn masked_x(&self) -> usize {
        self.cost.masked_x
    }

    /// X's shifted into the X-canceling MISR.
    pub fn leaked_x(&self) -> usize {
        self.cost.leaked_x
    }
}

/// Per-partition incremental state: everything a round needs without
/// re-analyzing unchanged partitions.
#[derive(Debug, Clone)]
struct PartitionInfo {
    patterns: PatternSet,
    masked_x: usize,
    /// The partition's correlation analysis, retained whole so a split
    /// only rescans this partition's X-active cells (the delta path,
    /// [`CorrelationAnalysis::analyze_children`]) instead of the full map.
    analysis: CorrelationAnalysis,
}

impl PartitionInfo {
    fn from_analysis(patterns: PatternSet, analysis: CorrelationAnalysis) -> Self {
        let masked_x = analysis.fully_x_cells().len() * patterns.card();
        PartitionInfo {
            patterns,
            masked_x,
            analysis,
        }
    }

    fn compute(xmap: &XMap, patterns: PatternSet) -> Self {
        let analysis = CorrelationAnalysis::analyze(xmap, &patterns);
        Self::from_analysis(patterns, analysis)
    }

    /// Splits this partition on the pivot cell's X pattern set. Both
    /// children are analyzed with one delta pass over this partition's
    /// active cells.
    fn split(&self, xmap: &XMap, pivot_cell: usize, threads: usize) -> (Self, Self) {
        let xset = xmap.xset_linear(pivot_cell).expect("pivot cell captures X");
        let (with_x, without_x) = self.patterns.split_by(xset);
        debug_assert!(!with_x.is_empty() && !without_x.is_empty());
        let (a_with, a_without) = self.analysis.analyze_children(xmap, &with_x, threads);
        (
            Self::from_analysis(with_x, a_with),
            Self::from_analysis(without_x, a_without),
        )
    }
}

/// Reusable per-worker word buffers for the cost-only split evaluator.
///
/// The superset-counting kernel only reads words at a partition's
/// nonzero word indices, and the evaluator only writes those same
/// indices, so the buffers are never zeroed between candidates — they
/// just need capacity. One `SplitScratch` per worker lives in a pool
/// owned by [`PartitionEngine::run`] and is reused across rounds.
#[derive(Debug, Default)]
struct SplitScratch {
    child_a: Vec<u64>,
    child_b: Vec<u64>,
}

impl SplitScratch {
    fn ensure(&mut self, stride: usize) {
        if self.child_a.len() < stride {
            self.child_a.resize(stride, 0);
            self.child_b.resize(stride, 0);
        }
    }
}

/// Fewest rows a kernel shard is allowed to hold: below this the scoped
/// fan-out costs more than the band sweep it parallelizes.
const MIN_SHARD_ROWS: usize = 64;

/// Shard count for one candidate's superset sweep over `rows` active
/// rows on a `kernel_threads`-wide pool: one shard per worker, but never
/// so many that a shard drops under [`MIN_SHARD_ROWS`] rows.
fn kernel_shards(rows: usize, kernel_threads: usize) -> usize {
    if kernel_threads <= 1 {
        1
    } else {
        kernel_threads.min(rows / MIN_SHARD_ROWS).max(1)
    }
}

/// Per-round, per-partition context shared by all of that partition's
/// split candidates: the partition's word mask and a suffix histogram of
/// active-cell counts for the pruning bound.
struct PartCtx {
    /// Nonzero word indices of the partition's pattern set.
    word_ids: Vec<u32>,
    /// Distinct restricted X counts, ascending (one per count class).
    counts: Vec<u32>,
    /// `suffix[i]` = number of active cells with count >= `counts[i]`.
    suffix: Vec<usize>,
}

impl PartCtx {
    fn build(info: &PartitionInfo) -> Self {
        let word_ids: Vec<u32> = info
            .patterns
            .as_bits()
            .nonzero_word_indices()
            .map(|w| w as u32)
            .collect();
        let mut counts = Vec::new();
        let mut suffix = Vec::new();
        for (count, cells) in info.analysis.classes() {
            counts.push(count as u32);
            suffix.push(cells.len());
        }
        let mut acc = 0usize;
        for s in suffix.iter_mut().rev() {
            acc += *s;
            *s = acc;
        }
        PartCtx {
            word_ids,
            counts,
            suffix,
        }
    }

    /// Number of active cells whose restricted count is at least `k`.
    fn cells_with_count_ge(&self, k: usize) -> usize {
        let i = self.counts.partition_point(|&c| (c as usize) < k);
        self.suffix.get(i).copied().unwrap_or(0)
    }
}

/// Every knob of a partitioning run in one plain-data struct.
///
/// This is the single options type shared by [`PartitionEngine`], the
/// wire `PlanRequest` and the `xhybrid` CLI flags — construct it with
/// struct-update syntax over [`Default`]:
///
/// ```
/// use xhc_core::{PlanOptions, SplitStrategy};
///
/// let opts = PlanOptions {
///     strategy: SplitStrategy::BestCost,
///     threads: 2,
///     ..PlanOptions::default()
/// };
/// assert!(opts.cost_stop);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanOptions {
    /// How the engine chooses which split to attempt each round.
    pub strategy: SplitStrategy,
    /// How the engine picks the pivot cell within the chosen class.
    pub policy: CellSelection,
    /// Worker-pool width for candidate evaluation and child re-analysis.
    /// `0` means [`xhc_par::max_threads`]. The outcome is bit-identical
    /// for every width — this knob trades wall-clock only (the
    /// equivalence suite runs it at 1, 2 and 8).
    pub threads: usize,
    /// Caps the number of accepted rounds (`None` = unbounded).
    pub max_rounds: Option<usize>,
    /// Whether the paper's cost-function stop rule is active; disabling
    /// it runs partitioning until no partition is splittable (the
    /// depth-sweep ablation).
    pub cost_stop: bool,
    /// Which planning backend handles the request (see
    /// [`crate::backend`]). [`PartitionEngine`] itself ignores this — it
    /// *is* the hybrid backend — but the wire `PlanRequest`, the daemon
    /// and the CLI route on it, so it rides in the shared options struct.
    pub backend: crate::backend::BackendId,
}

impl Default for PlanOptions {
    /// The paper's defaults: largest-class splits, deterministic
    /// first-cell selection, automatic thread count, no round cap, cost
    /// stop active, hybrid backend.
    fn default() -> PlanOptions {
        PlanOptions {
            strategy: SplitStrategy::LargestClass,
            policy: CellSelection::First,
            threads: 0,
            max_rounds: None,
            cost_stop: true,
            backend: crate::backend::BackendId::Hybrid,
        }
    }
}

/// The paper's partitioning engine: iterative binary splits on
/// inter-correlated scan cells, gated by the control-bit cost function.
///
/// # Examples
///
/// Reproducing the paper's Fig. 5/6 worked example (m = 10, q = 2):
///
/// ```
/// use xhc_core::{CellSelection, PartitionEngine};
/// use xhc_misr::XCancelConfig;
/// use xhc_scan::{CellId, ScanConfig, XMapBuilder};
///
/// let cfg = ScanConfig::uniform(5, 3);
/// let mut b = XMapBuilder::new(cfg, 8);
/// for p in [0, 3, 4, 5] {
///     b.add_x(CellId::new(0, 0), p).unwrap();
///     b.add_x(CellId::new(1, 0), p).unwrap();
///     b.add_x(CellId::new(2, 0), p).unwrap();
/// }
/// for p in [0, 4] { b.add_x(CellId::new(1, 2), p).unwrap(); }
/// for p in [0, 1, 2, 3, 4, 6, 7] { b.add_x(CellId::new(3, 2), p).unwrap(); }
/// for p in [0, 1, 3, 4, 6, 7] { b.add_x(CellId::new(4, 1), p).unwrap(); }
/// b.add_x(CellId::new(4, 2), 5).unwrap();
/// let xmap = b.finish();
///
/// let outcome = PartitionEngine::new(XCancelConfig::new(10, 2)).run(&xmap);
/// assert_eq!(outcome.partitions.len(), 3);
/// assert_eq!(outcome.masked_x(), 23);
/// assert_eq!(outcome.leaked_x(), 5);
/// assert_eq!(outcome.cost.total_ceil(), 58);
/// ```
#[derive(Debug, Clone)]
pub struct PartitionEngine {
    cancel: XCancelConfig,
    opts: PlanOptions,
}

impl PartitionEngine {
    /// An engine with the paper's defaults ([`PlanOptions::default`]).
    pub fn new(cancel: XCancelConfig) -> Self {
        PartitionEngine::with_options(cancel, PlanOptions::default())
    }

    /// An engine with explicit options — the preferred constructor; the
    /// same [`PlanOptions`] travels through the wire format and the CLI.
    pub fn with_options(cancel: XCancelConfig, opts: PlanOptions) -> Self {
        PartitionEngine { cancel, opts }
    }

    /// The options this engine runs with.
    pub fn options(&self) -> PlanOptions {
        self.opts
    }

    /// The X-canceling configuration the cost function uses.
    pub fn cancel_config(&self) -> XCancelConfig {
        self.cancel
    }

    /// Runs the partitioning on an X map.
    ///
    /// Starts from the single all-pattern partition; each round picks,
    /// over all current partitions, the pivot class with the most cells
    /// (ties: higher X count, then lower partition index), splits that
    /// partition by the selected cell's X pattern set, and — when the cost
    /// stop is active — accepts the split only if the total control-bit
    /// cost strictly decreases.
    pub fn run(&self, xmap: &XMap) -> PartitionOutcome {
        self.run_with_matrix(xmap, None)
    }

    /// Like [`PartitionEngine::run`], but reuses an already-packed
    /// `cells × patterns` matrix for `xmap` instead of building one.
    ///
    /// The serve front end batches concurrent submissions of the same
    /// workload this way: one packed build serves many engine passes
    /// (different options, same X map). Passing `None` builds the matrix
    /// internally exactly as [`PartitionEngine::run`] does; passing a
    /// matrix that was not packed from this `xmap` produces garbage
    /// plans, so callers key shared matrices by workload content hash.
    /// Only the `BestCost` strategy prices candidates on the packed
    /// matrix; under `LargestClass` the shared matrix is ignored.
    pub fn run_with_matrix(&self, xmap: &XMap, shared: Option<&XBitMatrix>) -> PartitionOutcome {
        let num_patterns = xmap.num_patterns();
        let total_x = xmap.total_x();
        let word_bits = xmap.config().mask_word_bits() as u128;
        let threads = match self.opts.threads {
            0 => xhc_par::max_threads(),
            t => t,
        };
        let mut run_span = xhc_trace::span("partition.run")
            .arg("patterns", num_patterns as u64)
            .arg("total_x", total_x as u64)
            .arg("threads", threads as u64);
        let mut rng = match self.opts.policy {
            CellSelection::Seeded(seed) => Some(XhcRng::seed_from_u64(seed)),
            _ => None,
        };

        let cost_from = |masked_x: usize, num_partitions: usize| -> HybridCost {
            let leaked_x = total_x - masked_x;
            HybridCost {
                masking_bits: word_bits * num_partitions as u128,
                canceling_bits: self.cancel.control_bits(leaked_x),
                masked_x,
                leaked_x,
                num_partitions,
            }
        };

        let mut infos = vec![PartitionInfo::compute(xmap, PatternSet::all(num_patterns))];
        // Masked-X total, maintained incrementally: a split replaces one
        // partition's contribution with its two children's.
        let mut masked_total = infos[0].masked_x;
        // The packed cells × patterns matrix drives the cost-only
        // candidate evaluator; only the BestCost strategy prices
        // candidates, so only it pays for the build — or borrows the
        // caller's shared build when batching.
        let built: Option<XBitMatrix> = match (self.opts.strategy, shared) {
            (SplitStrategy::BestCost, None) => Some(xmap.to_bitmatrix()),
            _ => None,
        };
        let matrix: Option<&XBitMatrix> = match self.opts.strategy {
            SplitStrategy::BestCost => shared.or(built.as_ref()),
            SplitStrategy::LargestClass => None,
        };
        let mut scratch_pool: Vec<SplitScratch> = Vec::new();
        let initial_cost = cost_from(masked_total, 1);
        let mut cost = initial_cost.clone();
        let mut rounds = Vec::new();

        loop {
            if let Some(max) = self.opts.max_rounds {
                if rounds.len() >= max {
                    break;
                }
            }
            let mut round_span =
                xhc_trace::span("partition.round").arg("round", (rounds.len() + 1) as u64);
            // `(pi, pivot_cell, class_count, class_size, child_with,
            // child_without, next_cost)` of the accepted-candidate split.
            let chosen = match self.opts.strategy {
                SplitStrategy::LargestClass => {
                    // The paper's rule: largest pivot class wins.
                    let Some((pi, class_size, class_count)) = infos
                        .iter()
                        .enumerate()
                        .filter_map(|(i, info)| {
                            info.analysis
                                .pivot_class()
                                .map(|(count, cells)| (i, cells.len(), count))
                        })
                        .max_by(|a, b| {
                            (a.1, a.2, std::cmp::Reverse(a.0)).cmp(&(
                                b.1,
                                b.2,
                                std::cmp::Reverse(b.0),
                            ))
                        })
                    else {
                        break;
                    };
                    let (_, cells) = infos[pi].analysis.pivot_class().expect("candidate present");
                    let pivot_cell = match self.opts.policy {
                        CellSelection::First => cells[0],
                        CellSelection::Seeded(_) => *cells
                            .choose(rng.as_mut().expect("seeded rng"))
                            .expect("class is non-empty"),
                        CellSelection::GlobalMaxX => cells
                            .iter()
                            .copied()
                            .max_by_key(|&c| {
                                let cell = xmap.config().cell_at(c);
                                xmap.x_count(cell)
                            })
                            .expect("class is non-empty"),
                    };
                    let (w, wo) = infos[pi].split(xmap, pivot_cell, threads);
                    let next_cost = cost_from(
                        masked_total - infos[pi].masked_x + w.masked_x + wo.masked_x,
                        infos.len() + 1,
                    );
                    Some((pi, pivot_cell, class_count, class_size, w, wo, next_cost))
                }
                SplitStrategy::BestCost => {
                    // Extension: price a representative of every count
                    // class and keep the cheapest successor. Candidates
                    // are evaluated cost-only on the packed matrix — the
                    // masked-X total of each child is (#active cells
                    // whose X row covers the child) × |child| — and only
                    // the winner is materialised via `split()`. Bound
                    // pruning and the parallel fan-out are arranged so
                    // the selected pivot is exactly the one the original
                    // sequential fold over all candidates would pick.
                    let matrix = matrix.expect("matrix built for BestCost");
                    let stride = matrix.stride();
                    let num_next = infos.len() + 1;
                    let candidates: Vec<(usize, usize, usize, usize)> = infos
                        .iter()
                        .enumerate()
                        .flat_map(|(pi, info)| {
                            let card = info.patterns.card();
                            info.analysis
                                .classes()
                                .filter(move |&(count, _)| count > 0 && count < card)
                                .map(move |(count, cells)| (pi, count, cells[0], cells.len()))
                        })
                        .collect();
                    round_span.set_arg("candidates", candidates.len() as u64);
                    xhc_trace::counter_add("partition.candidates", candidates.len() as u64);
                    let ctx: Vec<PartCtx> = infos.iter().map(PartCtx::build).collect();

                    // Cost-only evaluation: the exact masked-X total the
                    // materialised split would produce, without building
                    // it. A cell is fully-X in a child iff its X row is a
                    // superset of the child; such a cell is necessarily
                    // active in the parent, so the sweep is restricted to
                    // the parent's active entries and the parent's
                    // nonzero words.
                    // `kernel_threads` is the pool width this one
                    // candidate may fan its row sweep over: 1 when the
                    // pool is already busy across candidates, the full
                    // width when candidates are evaluated sequentially
                    // (the seed, and starved late rounds). Counts are
                    // identical either way — sharding only re-bands the
                    // row loop.
                    let eval = |scratch: &mut SplitScratch,
                                &(pi, count, rep, _size): &(usize, usize, usize, usize),
                                kernel_threads: usize|
                     -> usize {
                        let info = &infos[pi];
                        let pc = &ctx[pi];
                        scratch.ensure(stride);
                        let part_words = info.patterns.as_bits().as_words();
                        let pivot_pos = xmap.find_entry(rep).expect("pivot cell captures X");
                        let pivot_row = matrix.row(pivot_pos);
                        for &w in &pc.word_ids {
                            let w = w as usize;
                            let p = part_words[w];
                            let v = pivot_row[w];
                            scratch.child_a[w] = p & v;
                            scratch.child_b[w] = p & !v;
                        }
                        let rows = info.analysis.active_entries();
                        let (na, nb) = matrix.count_supersets_pair_sharded(
                            rows,
                            &pc.word_ids,
                            &scratch.child_a,
                            &scratch.child_b,
                            kernel_shards(rows.len(), kernel_threads),
                            kernel_threads,
                        );
                        let card = info.patterns.card();
                        masked_total - info.masked_x + na * count + nb * (card - count)
                    };

                    // Monotone lower bound per candidate: at most
                    // suffix(k) active cells can cover a child of size k
                    // (covering needs restricted count >= k), and the
                    // children's masked X's cannot exceed the parent's
                    // total X. More masked X never raises the cost, so
                    // pricing the bound's masked total bounds the true
                    // cost from below — in f64 too, since control_bits is
                    // nondecreasing in leaked X.
                    let bounds: Vec<f64> = candidates
                        .iter()
                        .map(|&(pi, count, _, _)| {
                            let info = &infos[pi];
                            let card = info.patterns.card();
                            let pc = &ctx[pi];
                            let ub_children = (pc.cells_with_count_ge(count) * count
                                + pc.cells_with_count_ge(card - count) * (card - count))
                                .min(info.analysis.total_x());
                            cost_from(masked_total - info.masked_x + ub_children, num_next).total()
                        })
                        .collect();

                    // Seed with the lowest-bound candidate (first on
                    // ties), evaluate it exactly, then prune every
                    // candidate whose bound strictly exceeds the seed's
                    // exact cost: such a candidate's cost is > the final
                    // minimum, so the original fold could never have
                    // selected it. All of this is sequential or
                    // order-preserving, so the outcome is identical at
                    // every thread count.
                    let mut seed: Option<usize> = None;
                    for (i, &b) in bounds.iter().enumerate() {
                        if seed.is_none_or(|s| b < bounds[s]) {
                            seed = Some(i);
                        }
                    }
                    seed.map(|seed| {
                        if scratch_pool.is_empty() {
                            scratch_pool.push(SplitScratch::default());
                        }
                        // The seed is evaluated alone, so its sweep gets
                        // the whole pool.
                        let seed_masked = eval(&mut scratch_pool[0], &candidates[seed], threads);
                        let seed_cost = cost_from(seed_masked, num_next).total();

                        let retained: Vec<usize> = (0..candidates.len())
                            .filter(|&i| i != seed && bounds[i] <= seed_cost)
                            .collect();
                        let pruned = (candidates.len() - 1 - retained.len()) as u64;
                        round_span.set_arg("pruned", pruned);
                        xhc_trace::counter_add("partition.pruned", pruned);
                        // Pick the parallel axis: enough survivors keep
                        // every worker busy across candidates (unsharded
                        // kernels); starved rounds — the final rounds of
                        // a full-size run, where pruning leaves a handful
                        // of candidates — flip to sequential candidates
                        // with each kernel sharded across the pool.
                        let evald: Vec<usize> = if retained.len() >= threads {
                            xhc_par::par_map_scratch_threads(
                                threads,
                                &mut scratch_pool,
                                &retained,
                                |scratch, &i| eval(scratch, &candidates[i], 1),
                            )
                        } else {
                            let scratch = &mut scratch_pool[0];
                            retained
                                .iter()
                                .map(|&i| eval(scratch, &candidates[i], threads))
                                .collect()
                        };
                        let mut masked_vals: Vec<Option<usize>> = vec![None; candidates.len()];
                        masked_vals[seed] = Some(seed_masked);
                        for (&i, m) in retained.iter().zip(evald) {
                            masked_vals[i] = Some(m);
                        }

                        // Sequential fold in candidate order: the first
                        // strict minimum wins, exactly as the unpruned
                        // fold over all candidates would.
                        let mut best: Option<(usize, usize, f64)> = None;
                        for (i, m) in masked_vals.iter().enumerate() {
                            let Some(m) = *m else { continue };
                            let t = cost_from(m, num_next).total();
                            if best.is_none_or(|(_, _, bt)| t < bt) {
                                best = Some((i, m, t));
                            }
                        }
                        let (i, masked_next, _) = best.expect("seed always evaluated");
                        let (pi, count, rep, size) = candidates[i];
                        let (w, wo) = infos[pi].split(xmap, rep, threads);
                        debug_assert_eq!(
                            masked_total - infos[pi].masked_x + w.masked_x + wo.masked_x,
                            masked_next,
                            "cost-only evaluation must match the materialised split"
                        );
                        let next_cost = cost_from(masked_next, num_next);
                        (pi, rep, count, size, w, wo, next_cost)
                    })
                }
            };
            let Some((pi, pivot_cell, class_count, class_size, child_w, child_wo, next_cost)) =
                chosen
            else {
                break;
            };
            round_span.set_arg("partition", pi as u64);
            round_span.set_arg("pivot", pivot_cell as u64);
            round_span.set_arg("class_count", class_count as u64);
            round_span.set_arg("class_size", class_size as u64);
            round_span.set_arg("masked_x", next_cost.masked_x as u64);
            round_span.set_arg("leaked_x", next_cost.leaked_x as u64);

            if self.opts.cost_stop && next_cost.total() >= cost.total() {
                round_span.set_arg("accepted", 0);
                break;
            }
            round_span.set_arg("accepted", 1);
            rounds.push(RoundRecord {
                round: rounds.len() + 1,
                split_partition: pi,
                pivot_cell,
                class_count,
                class_size,
                cost_after: next_cost.clone(),
            });
            masked_total = masked_total - infos[pi].masked_x + child_w.masked_x + child_wo.masked_x;
            infos[pi] = child_w;
            infos.insert(pi + 1, child_wo);
            cost = next_cost;
        }

        let partitions: Vec<PatternSet> = infos.into_iter().map(|i| i.patterns).collect();
        let (final_cost, masks) = hybrid_cost_with_masks(xmap, &partitions, self.cancel);
        debug_assert!((final_cost.total() - cost.total()).abs() < 1e-6);

        // Self-checks mirroring the xhc-lint rules (kept inline: lint
        // depends on this crate, so it cannot be called from here).
        #[cfg(debug_assertions)]
        {
            // XL0301 partition-cover: disjoint cover of the pattern set.
            let mut union = PatternSet::empty(num_patterns);
            for part in &partitions {
                debug_assert!(
                    union.is_disjoint_from(part),
                    "partition plan has overlapping partitions"
                );
                union = union.union(part);
            }
            debug_assert_eq!(
                union.card(),
                num_patterns,
                "partition plan does not cover every pattern"
            );
            // XL0302 unsafe-mask: a masked cell is X under every pattern
            // of its partition (no coverage loss).
            for (part, mask) in partitions.iter().zip(&masks) {
                for idx in 0..xmap.config().total_cells() {
                    if mask.masks(idx) {
                        let cell = xmap.config().cell_at(idx);
                        debug_assert!(
                            xmap.xset(cell).is_some_and(|xs| part.is_subset_of(xs)),
                            "mask gates a non-X response at cell {cell}"
                        );
                    }
                }
            }
            // XL0303 cost-mismatch: accounting balances the X budget.
            debug_assert_eq!(
                final_cost.masked_x + final_cost.leaked_x,
                total_x,
                "masked + leaked X must equal the map's total X"
            );
            debug_assert_eq!(final_cost.num_partitions, partitions.len());
        }

        run_span.set_arg("partitions", partitions.len() as u64);
        run_span.set_arg("rounds", rounds.len() as u64);
        run_span.set_arg("masked_x", final_cost.masked_x as u64);
        run_span.set_arg("leaked_x", final_cost.leaked_x as u64);
        PartitionOutcome {
            partitions,
            masks,
            cost: final_cost,
            initial_cost,
            rounds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xhc_scan::{CellId, ScanConfig, XMapBuilder};

    fn fig4_xmap() -> XMap {
        let cfg = ScanConfig::uniform(5, 3);
        let mut b = XMapBuilder::new(cfg, 8);
        for p in [0, 3, 4, 5] {
            b.add_x(CellId::new(0, 0), p).unwrap();
            b.add_x(CellId::new(1, 0), p).unwrap();
            b.add_x(CellId::new(2, 0), p).unwrap();
        }
        for p in [0, 4] {
            b.add_x(CellId::new(1, 2), p).unwrap();
        }
        for p in [0, 1, 2, 3, 4, 6, 7] {
            b.add_x(CellId::new(3, 2), p).unwrap();
        }
        for p in [0, 1, 3, 4, 6, 7] {
            b.add_x(CellId::new(4, 1), p).unwrap();
        }
        b.add_x(CellId::new(4, 2), 5).unwrap();
        b.finish()
    }

    #[test]
    fn fig5_full_run_m10_q2() {
        // The paper's main worked example: two rounds, final partitions
        // {P2,P3,P7,P8}, {P1,P4,P5}, {P6}; 23 masked, 5 leaked, 58 bits.
        let xmap = fig4_xmap();
        let outcome = PartitionEngine::new(XCancelConfig::new(10, 2)).run(&xmap);
        assert_eq!(outcome.rounds.len(), 2);
        assert_eq!(outcome.partitions.len(), 3);
        let got: std::collections::BTreeSet<Vec<usize>> = outcome
            .partitions
            .iter()
            .map(|p| p.iter().collect())
            .collect();
        let want: std::collections::BTreeSet<Vec<usize>> =
            [vec![1usize, 2, 6, 7], vec![0, 3, 4], vec![5]]
                .into_iter()
                .collect();
        assert_eq!(got, want);
        assert_eq!(outcome.masked_x(), 23);
        assert_eq!(outcome.leaked_x(), 5);
        assert_eq!(outcome.cost.total_ceil(), 58);
        assert_eq!(outcome.cost.masking_bits, 45);
        // Round 1 split the whole set on SC1[0] (linear 0); round 2 split
        // partition with X's on SC4[2] (linear 11).
        assert_eq!(outcome.rounds[0].pivot_cell, 0);
        assert_eq!(outcome.rounds[0].class_size, 3);
        assert_eq!(outcome.rounds[0].class_count, 4);
        assert_eq!(outcome.rounds[1].pivot_cell, 11);
        assert_eq!(outcome.rounds[1].class_size, 2);
        assert_eq!(outcome.rounds[1].class_count, 3);
    }

    #[test]
    fn fig5_stops_after_round1_with_m10_q1() {
        // With m=10, q=1 the cost function stops after round 1 (44 < 51).
        let xmap = fig4_xmap();
        let outcome = PartitionEngine::new(XCancelConfig::new(10, 1)).run(&xmap);
        assert_eq!(outcome.rounds.len(), 1);
        assert_eq!(outcome.partitions.len(), 2);
        assert_eq!(outcome.cost.total_ceil(), 44);
        let got: std::collections::BTreeSet<Vec<usize>> = outcome
            .partitions
            .iter()
            .map(|p| p.iter().collect())
            .collect();
        let want: std::collections::BTreeSet<Vec<usize>> =
            [vec![0usize, 3, 4, 5], vec![1, 2, 6, 7]]
                .into_iter()
                .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn partitions_always_partition_the_pattern_set() {
        let xmap = fig4_xmap();
        for cancel in [
            XCancelConfig::new(10, 2),
            XCancelConfig::new(10, 1),
            XCancelConfig::new(32, 7),
        ] {
            let outcome = PartitionEngine::new(cancel).run(&xmap);
            let mut union = PatternSet::empty(8);
            let mut card_sum = 0;
            for p in &outcome.partitions {
                assert!(union.is_disjoint_from(p), "partitions overlap");
                union = union.union(p);
                card_sum += p.card();
            }
            assert_eq!(card_sum, 8);
            assert_eq!(union, PatternSet::all(8));
        }
    }

    #[test]
    fn masks_never_cover_non_x_values() {
        // The paper's no-coverage-loss guarantee, checked exhaustively.
        let xmap = fig4_xmap();
        let outcome = PartitionEngine::new(XCancelConfig::new(10, 2)).run(&xmap);
        for (mask, part) in outcome.masks.iter().zip(&outcome.partitions) {
            for idx in 0..xmap.config().total_cells() {
                if mask.masks(idx) {
                    let cell = xmap.config().cell_at(idx);
                    for p in part.iter() {
                        assert!(
                            xmap.is_x(p, cell),
                            "mask covers non-X value of {cell} at pattern {p}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn without_cost_stop_runs_until_unsplittable() {
        let xmap = fig4_xmap();
        let opts = PlanOptions {
            cost_stop: false,
            ..PlanOptions::default()
        };
        let outcome = PartitionEngine::with_options(XCancelConfig::new(10, 1), opts).run(&xmap);
        // q=1 cost stop would stop at round 1; without it we reach the
        // fully-split state (3 partitions, like the q=2 run).
        assert_eq!(outcome.partitions.len(), 3);
    }

    #[test]
    fn max_rounds_caps_splits() {
        let xmap = fig4_xmap();
        let opts = PlanOptions {
            max_rounds: Some(1),
            ..PlanOptions::default()
        };
        let outcome = PartitionEngine::with_options(XCancelConfig::new(10, 2), opts).run(&xmap);
        assert_eq!(outcome.rounds.len(), 1);
        assert_eq!(outcome.partitions.len(), 2);
    }

    #[test]
    fn selection_policies_agree_on_fig4() {
        // The three count-4 cells share an identical X pattern set, so any
        // selection policy yields the same partitions.
        let xmap = fig4_xmap();
        let base = PartitionEngine::new(XCancelConfig::new(10, 2)).run(&xmap);
        for policy in [CellSelection::Seeded(99), CellSelection::GlobalMaxX] {
            let opts = PlanOptions {
                policy,
                ..PlanOptions::default()
            };
            let other = PartitionEngine::with_options(XCancelConfig::new(10, 2), opts).run(&xmap);
            let a: std::collections::BTreeSet<Vec<usize>> =
                base.partitions.iter().map(|p| p.iter().collect()).collect();
            let b: std::collections::BTreeSet<Vec<usize>> = other
                .partitions
                .iter()
                .map(|p| p.iter().collect())
                .collect();
            assert_eq!(a, b, "{policy:?} diverged");
        }
    }

    #[test]
    fn x_free_map_yields_single_partition() {
        let cfg = ScanConfig::uniform(2, 2);
        let xmap = XMapBuilder::new(cfg, 5).finish();
        let outcome = PartitionEngine::new(XCancelConfig::new(8, 2)).run(&xmap);
        assert_eq!(outcome.partitions.len(), 1);
        assert_eq!(outcome.masked_x(), 0);
        assert_eq!(outcome.leaked_x(), 0);
        assert!(outcome.rounds.is_empty());
    }

    #[test]
    fn best_cost_strategy_never_worse_on_fig4() {
        let xmap = fig4_xmap();
        let best_opts = PlanOptions {
            strategy: SplitStrategy::BestCost,
            ..PlanOptions::default()
        };
        for cancel in [XCancelConfig::new(10, 2), XCancelConfig::new(10, 1)] {
            let greedy = PartitionEngine::new(cancel).run(&xmap);
            let best = PartitionEngine::with_options(cancel, best_opts).run(&xmap);
            assert!(
                best.cost.total() <= greedy.cost.total() + 1e-9,
                "BestCost {} must be <= greedy {}",
                best.cost.total(),
                greedy.cost.total()
            );
            // Invariants still hold.
            let card: usize = best.partitions.iter().map(PatternSet::card).sum();
            assert_eq!(card, 8);
            assert_eq!(best.masked_x() + best.leaked_x(), xmap.total_x());
        }
    }

    #[test]
    fn best_cost_can_pivot_on_singleton_classes() {
        // A map where the only worthwhile pivot is a singleton class: one
        // dominant cell with X's in half the patterns, all other cells
        // unique counts. The paper's rule cannot split (no class >= 2);
        // BestCost can.
        let cfg = ScanConfig::uniform(1, 4);
        let mut b = XMapBuilder::new(cfg, 40);
        // Dominant cell: X under patterns 0..20.
        for p in 0..20 {
            b.add_x(CellId::new(0, 0), p).unwrap();
        }
        // Unique-count companions fully inside the dominant set.
        for p in 0..5 {
            b.add_x(CellId::new(0, 1), p).unwrap();
        }
        for p in 0..9 {
            b.add_x(CellId::new(0, 2), p).unwrap();
        }
        let xmap = b.finish();
        let cancel = XCancelConfig::new(4, 2);
        let greedy = PartitionEngine::new(cancel).run(&xmap);
        assert_eq!(greedy.partitions.len(), 1, "paper's rule cannot split");
        let best = PartitionEngine::with_options(
            cancel,
            PlanOptions {
                strategy: SplitStrategy::BestCost,
                ..PlanOptions::default()
            },
        )
        .run(&xmap);
        assert!(
            best.partitions.len() > 1,
            "BestCost splits on the singleton"
        );
        assert!(best.cost.total() < greedy.cost.total());
        assert!(best.masked_x() >= 20);
    }

    #[test]
    fn new_runs_with_the_default_options() {
        let engine = PartitionEngine::new(XCancelConfig::new(10, 2));
        assert_eq!(engine.options(), PlanOptions::default());
        let opts = PlanOptions::default();
        assert_eq!(opts.strategy, SplitStrategy::LargestClass);
        assert_eq!(opts.policy, CellSelection::First);
        assert_eq!(opts.threads, 0);
        assert_eq!(opts.max_rounds, None);
        assert!(opts.cost_stop);
        assert_eq!(opts.backend, crate::backend::BackendId::Hybrid);
    }

    #[test]
    fn cost_trace_is_strictly_decreasing_with_cost_stop() {
        let xmap = fig4_xmap();
        let outcome = PartitionEngine::new(XCancelConfig::new(10, 2)).run(&xmap);
        let mut prev = outcome.initial_cost.total();
        for r in &outcome.rounds {
            assert!(r.cost_after.total() < prev);
            prev = r.cost_after.total();
        }
    }
}
