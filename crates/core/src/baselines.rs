//! The comparison baselines of the paper's Table 1, plus a
//! superset-X-canceling-style baseline for the ablation benches.

use std::collections::HashSet;
use xhc_misr::{conventional_masking_bits, XCancelConfig};
use xhc_scan::{ScanConfig, XMap};

/// Baseline \[5\]: conventional per-pattern X-masking. Control bits =
/// `L · C · P`.
pub fn masking_only_bits(config: &ScanConfig, num_patterns: usize) -> u128 {
    conventional_masking_bits(config, num_patterns)
}

/// Baseline \[12\]: X-canceling MISR only. Control bits =
/// `m · q · totalX / (m − q)`.
pub fn canceling_only_bits(cancel: XCancelConfig, total_x: usize) -> f64 {
    cancel.control_bits(total_x)
}

/// Configuration for the superset-X-canceling-style baseline
/// (approximating the paper's references \[17, 18\]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SupersetConfig {
    /// The MISR (m, q) configuration.
    pub cancel: XCancelConfig,
    /// A pattern joins a cluster when the cluster's X-cell union grows by
    /// at most `merge_slack × |pattern's X cells|` new cells (0.0 = only
    /// identical-or-subset merges; larger = more aggressive merging and
    /// more lost observability).
    pub merge_slack: f64,
}

/// The result of the superset-X-canceling baseline.
///
/// Unlike the paper's proposed method, merging a pattern whose X set is a
/// *proper subset* of the cluster union treats some of its non-X values as
/// X — `lost_observability` counts those positions, which is exactly why
/// \[17, 18\] need iterative fault simulation and the proposed method does
/// not.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SupersetReport {
    /// Number of pattern clusters sharing control data.
    pub clusters: usize,
    /// Total selective-XOR control bits (one set per cluster).
    pub control_bits_x1000: u128,
    /// Non-X response bits whose observability is sacrificed by merging.
    pub lost_observability: usize,
}

impl SupersetReport {
    /// Total control bits as a float.
    pub fn control_bits(&self) -> f64 {
        self.control_bits_x1000 as f64 / 1000.0
    }
}

/// The superset baseline's full clustering detail: the legacy report
/// plus per-pattern cluster membership, for callers (the backend fleet)
/// that need a per-pattern account rather than just the totals.
#[derive(Debug, Clone, PartialEq)]
pub struct SupersetDetail {
    /// The aggregate report, identical to what
    /// [`superset_canceling`] returns for the same inputs.
    pub report: SupersetReport,
    /// Which cluster each pattern joined (`None` for X-free patterns,
    /// which need no canceling at all).
    pub cluster_of: Vec<Option<usize>>,
    /// Each cluster's canceling control bits (for its X-cell union).
    pub cluster_bits: Vec<f64>,
    /// Each cluster's member count.
    pub cluster_members: Vec<usize>,
}

/// Runs the superset-X-canceling-style baseline.
///
/// This is a faithful-in-spirit re-implementation of the *accounting* of
/// \[17, 18\]: patterns are greedily clustered by X-location similarity; each
/// cluster's selective-XOR control data is computed once for the union of
/// its X locations and reused by every member pattern. It is documented as
/// an approximation in `DESIGN.md` (the original's exact merge heuristic is
/// not published in the DAC'16 paper).
pub fn superset_canceling(xmap: &XMap, config: SupersetConfig) -> SupersetReport {
    superset_canceling_detailed(xmap, config).report
}

/// Like [`superset_canceling`], but also reports which cluster each
/// pattern landed in and each cluster's cost (see [`SupersetDetail`]).
pub fn superset_canceling_detailed(xmap: &XMap, config: SupersetConfig) -> SupersetDetail {
    // Invert the map: X-cell set per pattern.
    let mut per_pattern: Vec<Vec<usize>> = vec![Vec::new(); xmap.num_patterns()];
    for (cell, xs) in xmap.iter() {
        let idx = xmap.config().linear_index(cell);
        for p in xs.iter() {
            per_pattern[p].push(idx);
        }
    }

    struct Cluster {
        union: HashSet<usize>,
        members: usize,
    }
    let mut clusters: Vec<Cluster> = Vec::new();
    let mut lost = 0usize;
    let mut cluster_of: Vec<Option<usize>> = vec![None; xmap.num_patterns()];

    for (pattern, xcells) in per_pattern.iter().enumerate() {
        if xcells.is_empty() {
            // An X-free pattern needs no canceling at all; it joins a
            // virtual free cluster.
            continue;
        }
        // Find the cluster whose union grows least.
        let mut best: Option<(usize, usize)> = None; // (cluster idx, growth)
        for (ci, cluster) in clusters.iter().enumerate() {
            let growth = xcells.iter().filter(|c| !cluster.union.contains(c)).count();
            if best.is_none_or(|(_, g)| growth < g) {
                best = Some((ci, growth));
            }
        }
        let budget = (config.merge_slack * xcells.len() as f64).floor() as usize;
        match best {
            Some((ci, growth)) if growth <= budget => {
                let cluster = &mut clusters[ci];
                // This pattern loses the union positions where it is
                // non-X; every existing member retroactively loses the
                // `growth` newly-added cells (none were in any member's
                // X set, by construction of the union).
                lost += cluster.union.len() + growth - xcells.len();
                lost += growth * cluster.members;
                cluster.union.extend(xcells.iter().copied());
                cluster.members += 1;
                cluster_of[pattern] = Some(ci);
            }
            _ => {
                clusters.push(Cluster {
                    union: xcells.iter().copied().collect(),
                    members: 1,
                });
                cluster_of[pattern] = Some(clusters.len() - 1);
            }
        }
    }

    let mut control_bits = 0.0f64;
    let mut cluster_bits = Vec::with_capacity(clusters.len());
    for cluster in &clusters {
        let bits = config.cancel.control_bits(cluster.union.len());
        cluster_bits.push(bits);
        control_bits += bits;
    }
    SupersetDetail {
        report: SupersetReport {
            clusters: clusters.len(),
            control_bits_x1000: (control_bits * 1000.0).round() as u128,
            lost_observability: lost,
        },
        cluster_members: clusters.iter().map(|c| c.members).collect(),
        cluster_bits,
        cluster_of,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xhc_bits::PatternSet;
    use xhc_scan::{CellId, XMapBuilder};

    fn map_with(sets: &[(usize, &[usize])], patterns: usize) -> XMap {
        // sets: (cell linear index on a 1-chain config, pattern list)
        let cells = sets.iter().map(|&(c, _)| c).max().unwrap_or(0) + 1;
        let cfg = ScanConfig::uniform(1, cells);
        let mut b = XMapBuilder::new(cfg, patterns);
        for &(c, pats) in sets {
            b.add_xset(
                CellId::new(0, c),
                &PatternSet::from_patterns(patterns, pats.iter().copied()),
            );
        }
        b.finish()
    }

    #[test]
    fn masking_only_matches_misr_crate() {
        let cfg = ScanConfig::uniform(5, 3);
        assert_eq!(masking_only_bits(&cfg, 8), 120);
    }

    #[test]
    fn canceling_only_is_per_x_cost() {
        let c = XCancelConfig::new(10, 2);
        assert!((canceling_only_bits(c, 28) - 70.0).abs() < 1e-9);
    }

    #[test]
    fn identical_x_patterns_share_one_cluster() {
        // 4 patterns, all with the same two X cells -> one cluster, no
        // lost observability.
        let xmap = map_with(&[(0, &[0, 1, 2, 3]), (1, &[0, 1, 2, 3])], 4);
        let report = superset_canceling(
            &xmap,
            SupersetConfig {
                cancel: XCancelConfig::new(10, 2),
                merge_slack: 0.0,
            },
        );
        assert_eq!(report.clusters, 1);
        assert_eq!(report.lost_observability, 0);
        // One cluster with |union| = 2 -> 10*2*2/8 = 5 bits; vs canceling
        // only: 8 X's -> 20 bits.
        assert!((report.control_bits() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn disjoint_x_patterns_do_not_merge_at_zero_slack() {
        let xmap = map_with(&[(0, &[0]), (1, &[1]), (2, &[2])], 3);
        let report = superset_canceling(
            &xmap,
            SupersetConfig {
                cancel: XCancelConfig::new(10, 2),
                merge_slack: 0.0,
            },
        );
        assert_eq!(report.clusters, 3);
        assert_eq!(report.lost_observability, 0);
    }

    #[test]
    fn slack_merges_at_observability_cost() {
        // Pattern 0 has X in cells {0,1}; pattern 1 in {0,2}. With slack 1
        // they merge; pattern 1 loses cell 1's value, union grows by 1.
        let xmap = map_with(&[(0, &[0, 1]), (1, &[0]), (2, &[1])], 2);
        let report = superset_canceling(
            &xmap,
            SupersetConfig {
                cancel: XCancelConfig::new(10, 2),
                merge_slack: 0.5,
            },
        );
        assert_eq!(report.clusters, 1);
        assert!(report.lost_observability > 0);
    }

    #[test]
    fn x_free_patterns_cost_nothing() {
        let xmap = map_with(&[(0, &[1])], 5);
        let report = superset_canceling(
            &xmap,
            SupersetConfig {
                cancel: XCancelConfig::new(10, 2),
                merge_slack: 0.0,
            },
        );
        assert_eq!(report.clusters, 1);
        assert!((report.control_bits() - 2.5).abs() < 1e-6);
    }
}
