//! **Ablation: MISR (m, q) configuration.** Fig. 6 shows the stop point
//! depends on the MISR configuration ((10,2) continues where (10,1)
//! stops); this sweep reproduces that sensitivity on both the worked
//! example and a scaled industrial profile.
//!
//! Run with: `cargo run --release -p xhc-bench --bin ablation_misr_config`

use xhc_bench::fig4_xmap;
use xhc_core::PartitionEngine;
use xhc_misr::XCancelConfig;
use xhc_scan::XMap;
use xhc_workload::WorkloadSpec;

fn sweep(label: &str, xmap: &XMap, configs: &[(usize, usize)]) {
    println!("== {label} ==");
    println!(
        "{:>8} {:>11} {:>7} {:>13} {:>13} {:>12} {:>10}",
        "(m,q)", "partitions", "rounds", "mask bits", "cancel bits", "total bits", "leaked-X"
    );
    for &(m, q) in configs {
        let outcome = PartitionEngine::new(XCancelConfig::new(m, q)).run(xmap);
        println!(
            "({:>3},{:>2}) {:>11} {:>7} {:>13} {:>13.1} {:>12.1} {:>10}",
            m,
            q,
            outcome.partitions.len(),
            outcome.rounds.len(),
            outcome.cost.masking_bits,
            outcome.cost.canceling_bits,
            outcome.cost.total(),
            outcome.leaked_x(),
        );
    }
}

fn main() {
    sweep(
        "Fig. 4 worked example (paper: (10,2) -> 3 partitions/58 bits, (10,1) -> 2/44)",
        &fig4_xmap(),
        &[(10, 1), (10, 2), (10, 4), (32, 7)],
    );

    let spec = WorkloadSpec {
        name: "CKT-B (1/15 scale)",
        total_cells: 2405,
        num_chains: 5,
        num_patterns: 600,
        ..WorkloadSpec::ckt_b()
    };
    let xmap = spec.generate();
    sweep(
        "CKT-B (1/15 scale)",
        &xmap,
        &[(16, 3), (32, 3), (32, 7), (32, 15), (64, 7)],
    );
    println!("\nhigher q = cheaper canceling per X but more bits per halt: the stop point moves.");
}
