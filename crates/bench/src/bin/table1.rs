//! Regenerates the paper's **Table 1**: control-bit data volume and
//! normalized test time for CKT-A/B/C under X-masking-only \[5\],
//! X-canceling-MISR-only \[12\] and the proposed hybrid.
//!
//! The workloads are the synthetic industrial profiles of `xhc-workload`
//! (see DESIGN.md's substitution table); absolute numbers therefore differ
//! from the paper's, but the structure — who wins, by roughly what factor —
//! is the reproduction target recorded in EXPERIMENTS.md.
//!
//! Run with: `cargo run --release -p xhc-bench --bin table1`
//! (add `--scale N` to shrink the workloads by N× for a quick look)

use xhc_bench::{fmt_mbits, has_flag};
use xhc_core::{evaluate_hybrid, CellSelection};
use xhc_misr::XCancelConfig;
use xhc_workload::WorkloadSpec;

fn scaled(spec: WorkloadSpec, scale: usize) -> WorkloadSpec {
    if scale <= 1 {
        return spec;
    }
    WorkloadSpec {
        total_cells: (spec.total_cells / scale).max(spec.num_chains.div_ceil(scale).max(4)),
        num_chains: (spec.num_chains / scale).max(4),
        num_patterns: (spec.num_patterns / scale).max(50),
        ..spec
    }
}

fn main() {
    let scale = xhc_bench::arg_flag("--scale", 1);
    let cancel = XCancelConfig::paper_default(); // m = 32, q = 7
    println!(
        "Table 1 reproduction (m=32, q=7, 32 tester channels){}",
        if scale > 1 {
            format!(" — scaled 1/{scale}")
        } else {
            String::new()
        }
    );
    println!(
        "{:<10} {:>9} | {:>12} {:>12} {:>12} | {:>9} {:>9} | {:>8} {:>8} {:>8}",
        "Circuit",
        "X-dens",
        "Mask-only",
        "Cancel-only",
        "Proposed",
        "Impv[5]",
        "Impv[12]",
        "T[12]",
        "T(prop)",
        "T-impv"
    );
    for spec in [
        WorkloadSpec::ckt_a(),
        WorkloadSpec::ckt_b(),
        WorkloadSpec::ckt_c(),
    ] {
        let spec = scaled(spec, scale);
        let xmap = spec.generate();
        let r = evaluate_hybrid(&xmap, cancel, CellSelection::First);
        println!(
            "{:<10} {:>8.2}% | {:>12} {:>12} {:>12} | {:>8.2}x {:>8.2}x | {:>8.3} {:>8.3} {:>7.2}x",
            spec.name,
            100.0 * r.x_density,
            fmt_mbits(r.masking_only_bits as f64),
            fmt_mbits(r.canceling_only_bits),
            fmt_mbits(r.proposed_bits),
            r.impv_over_masking,
            r.impv_over_canceling,
            r.time_canceling_only,
            r.time_proposed,
            r.time_impv,
        );
        eprintln!(
            "  [{}] partitions={} masked={}/{} rounds={}",
            spec.name,
            r.outcome.partitions.len(),
            r.outcome.masked_x(),
            r.total_x,
            r.outcome.rounds.len()
        );
    }
    if has_flag("--paper") {
        println!("\nPaper's Table 1 for reference:");
        println!("CKT-A (0.05%): 1515.15M | 6.54M | 5.35M | 283.21x | 1.22x | 1.14 1.09 1.05x");
        println!("CKT-B (2.75%):  108.23M | 26.57M | 12.22M |  8.86x | 2.17x | 1.58 1.26 1.26x");
        println!("CKT-C (2.38%):  292.93M | 62.22M | 41.13M |  7.12x | 1.51x | 2.35 1.88 1.25x");
    }
}
