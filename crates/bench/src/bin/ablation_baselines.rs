//! **Ablation: baseline landscape.** Compares, on one workload, every
//! X-handling scheme the paper discusses: conventional X-masking \[5\],
//! X-canceling MISR only \[12\], a superset-X-canceling-style reuse
//! baseline \[17, 18\] (at several merge-slack settings, with its
//! observability cost made explicit), and the proposed hybrid.
//!
//! Run with: `cargo run --release -p xhc-bench --bin ablation_baselines`

use xhc_core::baselines::{
    canceling_only_bits, masking_only_bits, superset_canceling, SupersetConfig,
};
use xhc_core::{evaluate_hybrid, toggle_masking, CellSelection, TogglePolicy};
use xhc_misr::XCancelConfig;
use xhc_workload::WorkloadSpec;

fn main() {
    let spec = WorkloadSpec {
        name: "CKT-B (1/15 scale)",
        total_cells: 2405,
        num_chains: 5,
        num_patterns: 600,
        ..WorkloadSpec::ckt_b()
    };
    let xmap = spec.generate();
    let cancel = XCancelConfig::paper_default();

    println!(
        "workload {}: {} cells, {} patterns, {} X's ({:.2}%)",
        spec.name,
        spec.total_cells,
        spec.num_patterns,
        xmap.total_x(),
        100.0 * xmap.x_density()
    );
    println!(
        "{:<34} {:>14} {:>22}",
        "scheme", "control bits", "non-X values lost"
    );
    println!(
        "{:<34} {:>14.0} {:>22}",
        "X-masking only [5]",
        masking_only_bits(xmap.config(), xmap.num_patterns()) as f64,
        0
    );
    println!(
        "{:<34} {:>14.0} {:>22}",
        "X-canceling MISR only [12]",
        canceling_only_bits(cancel, xmap.total_x()),
        0
    );
    for slack in [0.0, 0.25, 0.5, 1.0] {
        let sup = superset_canceling(
            &xmap,
            SupersetConfig {
                cancel,
                merge_slack: slack,
            },
        );
        println!(
            "{:<34} {:>14.0} {:>22}",
            format!("superset-style [17,18], slack {slack}"),
            sup.control_bits(),
            sup.lost_observability
        );
    }
    for (label, policy) in [
        ("toggle masking [15,16], safe", TogglePolicy::Conservative),
        ("toggle masking [15,16], greedy", TogglePolicy::Aggressive),
    ] {
        let t = toggle_masking(&xmap, cancel, policy);
        println!(
            "{:<34} {:>14.0} {:>22}",
            label,
            t.total(),
            t.lost_observability
        );
    }
    let hybrid = evaluate_hybrid(&xmap, cancel, CellSelection::First);
    println!(
        "{:<34} {:>14.0} {:>22}",
        "proposed hybrid (this paper)", hybrid.proposed_bits, 0
    );
    println!(
        "\nthe hybrid and the baselines [5]/[12] lose nothing; superset-style reuse trades \
         observability (and hence fault-simulation effort) for control bits."
    );
}
