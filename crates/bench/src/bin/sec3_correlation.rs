//! Regenerates the paper's **§3 inter-correlation analysis** on the CKT-B
//! synthetic profile: 36,075 scan cells, 3,903 X-capturing, 90% of X's in
//! a few percent of cells, and large groups of cells with *identical* X
//! pattern sets across 3000 patterns.
//!
//! Run with: `cargo run --release -p xhc-bench --bin sec3_correlation`
//! (add `--scale N` for a quick pass)

use xhc_core::inter_correlation_stats;
use xhc_workload::WorkloadSpec;

fn main() {
    let scale = xhc_bench::arg_flag("--scale", 1);
    let mut spec = WorkloadSpec::ckt_b();
    if scale > 1 {
        spec.total_cells /= scale;
        spec.num_chains = (spec.num_chains / scale).max(4);
        spec.num_patterns = (spec.num_patterns / scale).max(50);
    }
    let xmap = spec.generate();
    let stats = inter_correlation_stats(&xmap);

    println!(
        "§3 inter-correlation analysis on the {} profile{}:",
        spec.name,
        if scale > 1 {
            format!(" (scaled 1/{scale})")
        } else {
            String::new()
        }
    );
    println!("  scan cells              : {}", stats.total_cells);
    println!(
        "  X-capturing cells       : {} ({:.1}%)  [paper: 3,903 = 10.8%]",
        stats.x_cells,
        100.0 * stats.x_cells as f64 / stats.total_cells as f64
    );
    println!("  total X's               : {}", stats.total_x);
    println!(
        "  90% of X's held by      : {:.1}% of cells  [paper: 4.9%]",
        100.0 * stats.cells_for_90pct
    );
    println!(
        "  largest identical group : {} cells share one X pattern set  [paper: 172 of 177]",
        stats.largest_identical_group
    );
    println!(
        "  largest count class     : {} cells with {} X's each  [paper: 177 cells with 406 X's]",
        stats.largest_count_class, stats.largest_count_class_count
    );
}
