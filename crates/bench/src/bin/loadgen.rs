//! `xhc-loadgen`: a closed-loop load generator for the planning daemon.
//!
//! Boots an in-process `xhc-serve` daemon on a loopback socket, warms
//! the plan cache once, then drives it with many concurrent keep-alive
//! clients (default 1000) each issuing a stream of plan requests over
//! one reused connection. Every `200` body is checked byte-for-byte
//! against the offline engine — throughput numbers for wrong answers
//! are worthless — and the run fails if the daemon sheds (`429`)
//! unless `--allow-shed` says shedding is the point of the experiment
//! (in which case every `429` must carry a sane `Retry-After`).
//!
//! Reports p50/p95/p99 request latency and can write (`--json`) or
//! merge (`--merge`, replacing earlier `loadgen/` cases) the numbers
//! into a `BENCH_serve.json`-style snapshot.
//!
//! ```text
//! xhc-loadgen [--clients N] [--requests N] [--workers N] [--threads N]
//!             [--max-inflight N] [--queue-depth N] [--allow-shed]
//!             [--json PATH] [--merge PATH]
//! ```

use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::Instant;

use xhc_core::PartitionEngine;
use xhc_misr::XCancelConfig;
use xhc_serve::{client, Server, ServerConfig};
use xhc_wire::{encode_plan, encode_xmap};
use xhc_workload::WorkloadSpec;

struct Args {
    clients: usize,
    requests: usize,
    workers: usize,
    threads: usize,
    max_inflight: Option<usize>,
    queue_depth: Option<usize>,
    allow_shed: bool,
    json: Option<PathBuf>,
    merge: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        clients: 1000,
        requests: 10,
        workers: 8,
        threads: 2,
        max_inflight: None,
        queue_depth: None,
        allow_shed: false,
        json: None,
        merge: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let num = |argv: &[String], i: usize, flag: &str| -> Result<usize, String> {
        argv.get(i + 1)
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| format!("{flag} needs an integer argument"))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--clients" => {
                args.clients = num(&argv, i, "--clients")?.max(1);
                i += 1;
            }
            "--requests" => {
                args.requests = num(&argv, i, "--requests")?.max(1);
                i += 1;
            }
            "--workers" => {
                args.workers = num(&argv, i, "--workers")?.max(1);
                i += 1;
            }
            "--threads" => {
                args.threads = num(&argv, i, "--threads")?;
                i += 1;
            }
            "--max-inflight" => {
                args.max_inflight = Some(num(&argv, i, "--max-inflight")?.max(1));
                i += 1;
            }
            "--queue-depth" => {
                args.queue_depth = Some(num(&argv, i, "--queue-depth")?.max(1));
                i += 1;
            }
            "--allow-shed" => args.allow_shed = true,
            "--json" => {
                args.json = Some(PathBuf::from(argv.get(i + 1).ok_or("--json needs a path")?));
                i += 1;
            }
            "--merge" => {
                args.merge = Some(PathBuf::from(
                    argv.get(i + 1).ok_or("--merge needs a path")?,
                ));
                i += 1;
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
        i += 1;
    }
    Ok(args)
}

/// One client's tally: latencies of its `200`s plus status counts.
#[derive(Default)]
struct ClientResult {
    latencies_ns: Vec<u64>,
    ok: u64,
    shed: u64,
    shed_without_retry_after: u64,
    shed_bad_retry_after: u64,
    mismatched_bodies: u64,
    other_statuses: u64,
    io_errors: u64,
}

fn run_client(
    addr: SocketAddr,
    requests: usize,
    path: &str,
    body: &[u8],
    expected: &[u8],
    barrier: &Barrier,
) -> ClientResult {
    let mut c = client::Client::new(addr);
    let mut out = ClientResult::default();
    barrier.wait();
    for _ in 0..requests {
        let started = Instant::now();
        match c.post(path, "application/octet-stream", body) {
            Ok(r) if r.status == 200 => {
                out.latencies_ns.push(started.elapsed().as_nanos() as u64);
                out.ok += 1;
                if r.body != expected {
                    out.mismatched_bodies += 1;
                }
            }
            Ok(r) if r.status == 429 => {
                out.shed += 1;
                match r.header("retry-after").and_then(|v| v.parse::<u64>().ok()) {
                    None => out.shed_without_retry_after += 1,
                    Some(secs) if !(1..=60).contains(&secs) => out.shed_bad_retry_after += 1,
                    Some(_) => {}
                }
            }
            Ok(_) => out.other_statuses += 1,
            Err(_) => out.io_errors += 1,
        }
    }
    out
}

/// Nearest-rank percentile over a sorted sample set.
fn percentile(sorted: &[u64], pct: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[(sorted.len() * pct).div_ceil(100).max(1) - 1]
}

/// The snapshot case lines this run contributes.
fn case_lines(tag: &str, lat: &[u64]) -> Vec<String> {
    let min = lat.first().copied().unwrap_or(0);
    let mean = if lat.is_empty() {
        0
    } else {
        lat.iter().sum::<u64>() / lat.len() as u64
    };
    vec![format!(
        "{{\"name\": \"loadgen/{tag}\", \"iters\": {}, \"min_ns\": {min}, \"median_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}, \"mean_ns\": {mean}}}",
        lat.len(),
        percentile(lat, 50),
        percentile(lat, 95),
        percentile(lat, 99),
    )]
}

/// Merges this run's `loadgen/` cases into an existing snapshot (the
/// line-based format `xhc_bench::timing::Harness::to_json` writes),
/// replacing any previous `loadgen/` cases. A missing or foreign file
/// is rewritten from scratch.
fn merge_snapshot(path: &PathBuf, fresh: &[String]) -> std::io::Result<()> {
    let existing = std::fs::read_to_string(path).unwrap_or_default();
    let mut header: Vec<String> = Vec::new();
    let mut cases: Vec<String> = Vec::new();
    let mut in_cases = false;
    for line in existing.lines() {
        if line.trim_start().starts_with("\"cases\"") {
            in_cases = true;
            continue;
        }
        if !in_cases {
            if line.trim() == "{" || line.trim_start().starts_with('"') {
                header.push(line.to_string());
            }
            continue;
        }
        let trimmed = line.trim().trim_end_matches(',');
        if trimmed.starts_with('{') && !trimmed.contains("\"name\": \"loadgen/") {
            cases.push(trimmed.to_string());
        }
    }
    if header.is_empty() {
        header = vec![
            "{".to_string(),
            "  \"group\": \"serve_latency\",".to_string(),
            "  \"budget_ms\": 0,".to_string(),
        ];
    }
    cases.extend(fresh.iter().cloned());
    let mut out = String::new();
    for line in &header {
        out.push_str(line);
        out.push('\n');
    }
    out.push_str("  \"cases\": [\n");
    for (i, case) in cases.iter().enumerate() {
        out.push_str("    ");
        out.push_str(case);
        if i + 1 < cases.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("xhc-loadgen: {e}");
            return ExitCode::FAILURE;
        }
    };

    let spec = WorkloadSpec {
        total_cells: 800,
        num_chains: 8,
        num_patterns: 96,
        seed: 0xBEEF,
        ..WorkloadSpec::default()
    };
    let xmap = spec.generate();
    let body = encode_xmap(&xmap);
    let offline = PartitionEngine::new(XCancelConfig::new(32, 7)).run(&xmap);
    let expected = encode_plan(&offline, xmap.num_patterns());
    let path = "/v1/plan?m=32&q=7";

    let store_dir = std::env::temp_dir().join(format!("xhc-loadgen-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    // Headroom by default: the bench measures latency, not shedding, so
    // admission control must stay out of the way unless the caller
    // narrows it on purpose.
    let config = ServerConfig::new(&store_dir)
        .with_workers(args.workers)
        .with_threads(args.threads)
        .with_max_inflight(args.max_inflight.unwrap_or(args.clients * 2))
        .with_queue_depth(args.queue_depth.unwrap_or(args.clients * 2));
    let server = Server::bind("127.0.0.1:0", config).expect("bind loopback");
    let addr = server.local_addr();
    let handle = server.handle();
    let join = thread::spawn(move || server.run());

    // Warm the cache so the measured requests are steady-state hits.
    let warm = client::post(addr, path, "application/octet-stream", &body).expect("warm cache");
    assert_eq!(warm.status, 200, "{}", warm.body_text());
    assert_eq!(
        warm.body, expected,
        "daemon plan differs from offline engine"
    );

    println!(
        "xhc-loadgen: {} keep-alive clients x {} requests against {addr} \
         ({} workers, {} engine threads)",
        args.clients, args.requests, args.workers, args.threads
    );
    let barrier = Arc::new(Barrier::new(args.clients));
    let started = Instant::now();
    let results: Vec<ClientResult> = thread::scope(|scope| {
        let mut joins = Vec::with_capacity(args.clients);
        for _ in 0..args.clients {
            let barrier = Arc::clone(&barrier);
            let (body, expected) = (&body, &expected);
            let requests = args.requests;
            let builder = thread::Builder::new().stack_size(256 * 1024);
            joins.push(
                builder
                    .spawn_scoped(scope, move || {
                        run_client(addr, requests, path, body, expected, &barrier)
                    })
                    .expect("spawn client"),
            );
        }
        joins.into_iter().map(|j| j.join().unwrap()).collect()
    });
    let wall = started.elapsed();

    let mut latencies: Vec<u64> = Vec::new();
    let mut total = ClientResult::default();
    for r in results {
        latencies.extend_from_slice(&r.latencies_ns);
        total.ok += r.ok;
        total.shed += r.shed;
        total.shed_without_retry_after += r.shed_without_retry_after;
        total.shed_bad_retry_after += r.shed_bad_retry_after;
        total.mismatched_bodies += r.mismatched_bodies;
        total.other_statuses += r.other_statuses;
        total.io_errors += r.io_errors;
    }
    latencies.sort_unstable();
    let sent = (args.clients * args.requests) as u64;
    let p50 = percentile(&latencies, 50);
    let p95 = percentile(&latencies, 95);
    let p99 = percentile(&latencies, 99);
    println!(
        "xhc-loadgen: {sent} sent in {:.2}s ({:.0} req/s): {} ok, {} shed, {} other, {} io errors",
        wall.as_secs_f64(),
        sent as f64 / wall.as_secs_f64(),
        total.ok,
        total.shed,
        total.other_statuses,
        total.io_errors
    );
    println!(
        "xhc-loadgen: latency p50 {:.3}ms  p95 {:.3}ms  p99 {:.3}ms",
        p50 as f64 / 1e6,
        p95 as f64 / 1e6,
        p99 as f64 / 1e6
    );

    handle.shutdown();
    let _ = join.join();
    let _ = std::fs::remove_dir_all(&store_dir);

    let tag = format!("keepalive_hit_{}c", args.clients);
    let lines = case_lines(&tag, &latencies);
    if let Some(json) = &args.json {
        let mut out = String::from("{\n  \"group\": \"serve_load\",\n  \"cases\": [\n");
        out.push_str(&format!("    {}\n", lines[0]));
        out.push_str("  ]\n}\n");
        if let Err(e) = std::fs::write(json, out) {
            eprintln!("xhc-loadgen: writing {}: {e}", json.display());
            return ExitCode::FAILURE;
        }
        println!("xhc-loadgen: snapshot written to {}", json.display());
    }
    if let Some(merge) = &args.merge {
        if let Err(e) = merge_snapshot(merge, &lines) {
            eprintln!("xhc-loadgen: merging into {}: {e}", merge.display());
            return ExitCode::FAILURE;
        }
        println!("xhc-loadgen: cases merged into {}", merge.display());
    }

    // Verdicts. Correctness first: any mismatched plan is fatal.
    if total.mismatched_bodies > 0 {
        eprintln!(
            "xhc-loadgen: FAILED: {} responses were not byte-identical to the offline engine",
            total.mismatched_bodies
        );
        return ExitCode::FAILURE;
    }
    if total.other_statuses > 0 || total.io_errors > 0 {
        eprintln!("xhc-loadgen: FAILED: unexpected statuses or transport errors");
        return ExitCode::FAILURE;
    }
    if args.allow_shed {
        if total.shed == 0 {
            eprintln!("xhc-loadgen: FAILED: --allow-shed expected the daemon to shed");
            return ExitCode::FAILURE;
        }
        if total.shed_without_retry_after > 0 || total.shed_bad_retry_after > 0 {
            eprintln!(
                "xhc-loadgen: FAILED: {} 429s without Retry-After, {} with out-of-range values",
                total.shed_without_retry_after, total.shed_bad_retry_after
            );
            return ExitCode::FAILURE;
        }
    } else if total.shed > 0 {
        eprintln!(
            "xhc-loadgen: FAILED: {} requests shed below the configured admission ceiling",
            total.shed
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
