//! **Ablation: pivot-cell selection policy.** The paper picks "randomly"
//! among the largest same-count class; this sweep compares deterministic
//! first-cell, several random seeds, and a globally-informed max-X policy.
//! Inter-correlation predicts the choice barely matters — the class
//! members usually share one X pattern set.
//!
//! Run with: `cargo run --release -p xhc-bench --bin ablation_cell_selection`

use xhc_core::{CellSelection, PartitionEngine};
use xhc_misr::XCancelConfig;
use xhc_workload::WorkloadSpec;

fn main() {
    let cancel = XCancelConfig::paper_default();
    println!(
        "{:<22} {:>11} {:>12} {:>10} {:>10}",
        "policy", "partitions", "total bits", "masked-X", "leaked-X"
    );
    for (label, policy) in [
        ("First".to_string(), CellSelection::First),
        ("GlobalMaxX".to_string(), CellSelection::GlobalMaxX),
        ("Seeded(1)".to_string(), CellSelection::Seeded(1)),
        ("Seeded(2)".to_string(), CellSelection::Seeded(2)),
        ("Seeded(3)".to_string(), CellSelection::Seeded(3)),
    ] {
        let spec = WorkloadSpec {
            name: "CKT-B (1/15 scale)",
            total_cells: 2405,
            num_chains: 5,
            num_patterns: 600,
            ..WorkloadSpec::ckt_b()
        };
        let xmap = spec.generate();
        let outcome = PartitionEngine::with_options(
            cancel,
            xhc_core::PlanOptions {
                policy,
                ..xhc_core::PlanOptions::default()
            },
        )
        .run(&xmap);
        println!(
            "{:<22} {:>11} {:>12.0} {:>10} {:>10}",
            label,
            outcome.partitions.len(),
            outcome.cost.total(),
            outcome.masked_x(),
            outcome.leaked_x(),
        );
    }
    println!("\nsmall spread across policies = the inter-correlation the paper relies on.");
}
