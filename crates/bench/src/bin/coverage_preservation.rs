//! Demonstrates the paper's **§4/§5 coverage claim** on circuit-derived
//! (not synthetic) responses: the hybrid's partition masks lose zero fault
//! coverage, while a naive mask-everything-with-an-X policy does.
//!
//! Run with: `cargo run --release -p xhc-bench --bin coverage_preservation`

use xhc_atpg::{generate_tests, AtpgConfig};
use xhc_core::PartitionEngine;
use xhc_fault::{all_output_faults, fault_coverage, FullObservability};
use xhc_logic::generate::CircuitSpec;
use xhc_misr::XCancelConfig;
use xhc_scan::{ScanConfig, ScanHarness};

fn main() {
    println!(
        "{:<6} {:>7} {:>8} {:>9} | {:>9} {:>9} {:>9}",
        "seed", "faults", "X-dens", "patterns", "raw-cov", "hybrid", "naive"
    );
    for seed in [1u64, 7, 42, 99, 123] {
        let circuit = CircuitSpec {
            num_inputs: 8,
            num_gates: 150,
            num_scan_flops: 24,
            num_shadow_flops: 3,
            num_buses: 2,
            seed,
            ..CircuitSpec::default()
        }
        .generate();
        let harness = ScanHarness::new(
            &circuit.netlist,
            ScanConfig::uniform(4, 6),
            circuit.scan_flops.clone(),
        )
        .expect("valid scan mapping");
        let faults = all_output_faults(&circuit.netlist);
        let atpg = generate_tests(&harness, &faults, AtpgConfig::default());
        let responses = harness.run(&atpg.patterns);
        let xmap = responses.to_xmap();
        let outcome = PartitionEngine::new(XCancelConfig::new(12, 3)).run(&xmap);

        let raw = fault_coverage(&harness, &atpg.patterns, &faults, &FullObservability);
        let hybrid = fault_coverage(&harness, &atpg.patterns, &faults, &|p: usize, c: usize| {
            let part = outcome
                .partitions
                .iter()
                .position(|s| s.contains(p))
                .expect("pattern in a partition");
            !outcome.masks[part].masks(c)
        });
        let naive = fault_coverage(&harness, &atpg.patterns, &faults, &|_: usize, c: usize| {
            xmap.x_count(xmap.config().cell_at(c)) == 0
        });
        println!(
            "{:<6} {:>7} {:>7.2}% {:>9} | {:>8.2}% {:>8.2}% {:>8.2}%{}",
            seed,
            faults.len(),
            100.0 * xmap.x_density(),
            atpg.patterns.len(),
            100.0 * raw.coverage(),
            100.0 * hybrid.coverage(),
            100.0 * naive.coverage(),
            if raw.detected == hybrid.detected {
                "  (hybrid == raw ✓)"
            } else {
                "  !! LOSS"
            },
        );
        assert_eq!(
            raw.detected, hybrid.detected,
            "hybrid masking must preserve coverage"
        );
    }
    println!("\nhybrid == raw on every circuit: the paper's no-fault-coverage-loss property.");
}
