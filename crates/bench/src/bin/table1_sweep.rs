//! **Table 1 robustness sweep**: re-runs the Table-1 evaluation over
//! several workload seeds per circuit profile, reporting the spread of
//! the improvement ratios. The paper gives single numbers per circuit;
//! this sweep shows how much of our reproduction is profile shape versus
//! random-draw luck.
//!
//! Run with: `cargo run --release -p xhc-bench --bin table1_sweep`

use xhc_core::{evaluate_hybrid, CellSelection};
use xhc_misr::XCancelConfig;
use xhc_workload::WorkloadSpec;

fn stats(values: &[f64]) -> (f64, f64, f64) {
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    (mean, min, max)
}

fn main() {
    let seeds: Vec<u64> = (0..5).collect();
    let cancel = XCancelConfig::paper_default();
    println!(
        "{:<8} {:>22} {:>22} {:>14}",
        "circuit", "impv/[5] mean (min-max)", "impv/[12] mean (min-max)", "partitions"
    );
    for base in [
        WorkloadSpec::ckt_a(),
        WorkloadSpec::ckt_b(),
        WorkloadSpec::ckt_c(),
    ] {
        // Sweep at 1/5 scale so five full evaluations stay fast while the
        // masking/canceling trade-off keeps its full-scale proportions
        // (cells and patterns shrink together).
        let spec = WorkloadSpec {
            total_cells: base.total_cells / 5,
            num_chains: (base.num_chains / 5).max(4),
            num_patterns: base.num_patterns / 5,
            ..base
        };
        let mut impv5 = Vec::new();
        let mut impv12 = Vec::new();
        let mut parts = Vec::new();
        for &seed in &seeds {
            let xmap = WorkloadSpec {
                seed,
                ..spec.clone()
            }
            .generate();
            let r = evaluate_hybrid(&xmap, cancel, CellSelection::First);
            impv5.push(r.impv_over_masking);
            impv12.push(r.impv_over_canceling);
            parts.push(r.outcome.partitions.len());
        }
        let (m5, lo5, hi5) = stats(&impv5);
        let (m12, lo12, hi12) = stats(&impv12);
        println!(
            "{:<8} {:>9.2}x ({:.2}-{:.2}) {:>10.2}x ({:.2}-{:.2}) {:>11?}",
            spec.name, m5, lo5, hi5, m12, lo12, hi12, parts
        );
    }
    println!("\npaper single-shot: CKT-A 283.21x/1.22x, CKT-B 8.86x/2.17x, CKT-C 7.12x/1.51x");
    println!("(1/5-scale sweep: mask bits shrink ~5x faster than cancel bits, so the");
    println!(" impv/[5] column is scale-depressed; the full-scale `table1` binary is the");
    println!(" apples-to-apples comparison — this sweep shows seed variance only.)");
}
