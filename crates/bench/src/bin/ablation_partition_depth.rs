//! **Ablation: partitioning depth.** Sweeps the number of partitioning
//! rounds (overriding the paper's cost-function stop) and prints the
//! mask/cancel/total control-bit trade-off — the U-shaped curve the §4
//! cost function is designed to find the bottom of.
//!
//! Run with: `cargo run --release -p xhc-bench --bin ablation_partition_depth`

use xhc_core::{PartitionEngine, PlanOptions};
use xhc_misr::XCancelConfig;
use xhc_workload::WorkloadSpec;

fn main() {
    let spec = WorkloadSpec {
        name: "CKT-B (1/15 scale)",
        total_cells: 2405,
        num_chains: 5,
        num_patterns: 600,
        ..WorkloadSpec::ckt_b()
    };
    let xmap = spec.generate();
    let cancel = XCancelConfig::paper_default();

    // Full run without the cost stop to learn the maximum depth.
    let no_stop = PlanOptions {
        cost_stop: false,
        ..PlanOptions::default()
    };
    let exhaustive = PartitionEngine::with_options(cancel, no_stop).run(&xmap);
    let max_rounds = exhaustive.rounds.len();
    let stopped = PartitionEngine::new(cancel).run(&xmap);

    println!(
        "workload {}: {} X's, exhaustive depth {} rounds, cost stop chooses {}",
        spec.name,
        xmap.total_x(),
        max_rounds,
        stopped.rounds.len()
    );
    println!(
        "{:>6} {:>11} {:>12} {:>13} {:>13} {:>9}",
        "rounds", "partitions", "mask bits", "cancel bits", "total bits", "masked-X"
    );
    for rounds in 0..=max_rounds {
        let outcome = PartitionEngine::with_options(
            cancel,
            PlanOptions {
                max_rounds: Some(rounds),
                ..no_stop
            },
        )
        .run(&xmap);
        let marker = if rounds == stopped.rounds.len() {
            "  <- cost-function stop"
        } else {
            ""
        };
        println!(
            "{:>6} {:>11} {:>12} {:>13.0} {:>13.0} {:>9}{}",
            rounds,
            outcome.partitions.len(),
            outcome.cost.masking_bits,
            outcome.cost.canceling_bits,
            outcome.cost.total(),
            outcome.masked_x(),
            marker,
        );
    }
}
