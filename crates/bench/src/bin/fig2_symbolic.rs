//! Regenerates the paper's **Figs. 2–3**: symbolic simulation of a 6-bit
//! MISR over a 6-chain × 3-cell unload with 4 X's, the X-dependency
//! matrix, and Gaussian elimination down to two X-free combinations.
//!
//! The paper's exact figure uses its own (undisclosed) MISR wiring; this
//! binary shows both (a) the figure's literal equations, verified, and
//! (b) our own MISR's symbolic rows for the same shape.
//!
//! Run with: `cargo run --release -p xhc-bench --bin fig2_symbolic`

use xhc_bits::{gauss, BitMatrix, BitVec};
use xhc_misr::{pattern_signature_rows, x_dependency_matrix, Taps};
use xhc_scan::ScanConfig;

fn main() {
    println!("== (a) The paper's literal Fig. 2 equations ==");
    // Rows M1..M6 over X1..X4 exactly as printed in the figure.
    let dep = BitMatrix::from_rows(vec![
        BitVec::from_indices(4, [0]),
        BitVec::from_indices(4, [0, 1, 2]),
        BitVec::from_indices(4, [2]),
        BitVec::from_indices(4, [0]),
        BitVec::from_indices(4, [0, 2]),
        BitVec::from_indices(4, [2, 3]),
    ]);
    print_matrix(&dep);
    let combos = gauss::x_free_combinations(&dep);
    println!(
        "rank={} -> {} X-free combinations:",
        dep.rank(),
        combos.len()
    );
    for c in &combos {
        let terms: Vec<String> = c.iter_ones().map(|b| format!("M{}", b + 1)).collect();
        println!("  {}", terms.join(" ^ "));
    }
    let paper = [
        BitVec::from_indices(6, [0, 2, 4]),
        BitVec::from_indices(6, [0, 3]),
    ];
    for (p, label) in paper.iter().zip(["M1^M3^M5", "M1^M4"]) {
        println!("  paper's {label}: X-free = {}", gauss::is_x_free(&dep, p));
    }

    println!("\n== (b) Our MISR's symbolic rows for the same 6x3 shape ==");
    let scan = ScanConfig::uniform(6, 3);
    let rows = pattern_signature_rows(&scan, 6, Taps::default_for(6));
    for (i, r) in rows.iter().enumerate() {
        let syms: Vec<String> = r.iter_ones().map(|s| format!("c{s}")).collect();
        println!("  M{} = {}", i + 1, syms.join(" ^ "));
    }
    // Same 4-X example on our wiring: cells 1, 6, 11, 16 are X.
    let x_cells = [1usize, 6, 11, 16];
    let dep2 = x_dependency_matrix(&rows, &x_cells);
    let combos2 = gauss::x_free_combinations(&dep2);
    println!(
        "  4 X's in a 6-bit MISR -> {} X-free combinations (paper: 6-4 = 2 when rank is full)",
        combos2.len()
    );
    println!(
        "  control bits: {} (m * #combos = 6 * {})",
        6 * combos2.len(),
        combos2.len()
    );
}

fn print_matrix(m: &BitMatrix) {
    for r in 0..m.num_rows() {
        let bits: String = (0..m.num_cols())
            .map(|c| if m.get(r, c) { '1' } else { '0' })
            .collect();
        println!("  M{}: {bits}", r + 1);
    }
}
