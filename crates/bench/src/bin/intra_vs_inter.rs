//! **Intra- vs. inter-correlation regimes** (the paper's §3 argument).
//!
//! The paper chooses inter-correlation (same cells across patterns) over
//! intra-correlation (adjacent cells along a chain) because "the
//! inter-correlation is found across multiple test patterns and thus it
//! has a potential to remove a higher number of X's". This experiment
//! makes the argument quantitative: sweep the workload's spatial
//! clustering, and compare the intra-exploiting toggle-masking baseline
//! against the inter-exploiting pattern-partitioning hybrid on the *same*
//! X maps.
//!
//! Run with: `cargo run --release -p xhc-bench --bin intra_vs_inter`

use xhc_core::{
    evaluate_hybrid, intra_correlation_stats, toggle_masking, CellSelection, TogglePolicy,
};
use xhc_misr::XCancelConfig;
use xhc_workload::WorkloadSpec;

fn main() {
    let cancel = XCancelConfig::paper_default();
    println!(
        "{:<22} {:>10} {:>12} | {:>15} {:>15} {:>15}",
        "spatial clustering",
        "X-runs>=2",
        "adj-Jaccard",
        "toggle (safe)",
        "toggle (greedy)",
        "hybrid (paper)"
    );
    for clustering in [0.0, 0.5, 0.9] {
        let spec = WorkloadSpec {
            total_cells: 2405,
            num_chains: 5,
            num_patterns: 600,
            x_density: 0.0275,
            correlated_fraction: 0.55,
            num_groups: 3,
            group_pattern_fraction: 0.77,
            x_cell_fraction: 0.108,
            spatial_clustering: clustering,
            ..WorkloadSpec::default()
        };
        let xmap = spec.generate();
        let intra = intra_correlation_stats(&xmap);
        let safe = toggle_masking(&xmap, cancel, TogglePolicy::Conservative);
        let greedy = toggle_masking(&xmap, cancel, TogglePolicy::Aggressive);
        let hybrid = evaluate_hybrid(&xmap, cancel, CellSelection::First);
        println!(
            "{:<22.1} {:>10} {:>12} | {:>14.0}b {:>12.0}b* {:>14.0}b",
            clustering,
            intra.runs,
            intra
                .mean_adjacent_jaccard
                .map_or("-".to_string(), |j| format!("{j:.2}")),
            safe.total(),
            greedy.total(),
            hybrid.proposed_bits,
        );
    }
    println!("\n(* greedy toggle masks non-X values and would need fault-simulation loops)");
    println!("the hybrid's advantage is insensitive to spatial clustering: it keys on");
    println!("pattern-axis correlation, which the workload keeps in every row above.");
}
