//! Regenerates the paper's **Figs. 4–6** worked example: the X-value
//! correlation analysis, the two partitioning rounds, the per-partition
//! control-bit generation, and the cost-function traces for both MISR
//! configurations (m=10, q=2) and (m=10, q=1).
//!
//! Run with: `cargo run --release -p xhc-bench --bin fig4_6_worked_example`

use xhc_bench::fig4_xmap;
use xhc_bits::PatternSet;
use xhc_core::{CorrelationAnalysis, PartitionEngine};
use xhc_misr::XCancelConfig;

fn main() {
    let xmap = fig4_xmap();

    println!("== Fig. 4: X-value correlation analysis ==");
    let analysis = CorrelationAnalysis::analyze(&xmap, &PatternSet::all(8));
    for (count, cells) in analysis.classes() {
        println!(
            "  {} scan cell(s) capture {} X's: {:?}",
            cells.len(),
            count,
            cells
        );
    }
    println!("  total X's: {}", analysis.total_x());

    for (m, q, label) in [
        (10, 2, "Fig. 5/6 main configuration"),
        (10, 1, "Fig. 6 alternate"),
    ] {
        println!("\n== {label}: m={m}, q={q} ==");
        let outcome = PartitionEngine::new(XCancelConfig::new(m, q)).run(&xmap);
        println!(
            "  round 0: 1 partition, {:.1} bits",
            outcome.initial_cost.total()
        );
        for r in &outcome.rounds {
            println!(
                "  round {}: split partition {} on cell {} -> {} partitions, {:.1} bits ({} masked / {} leaked)",
                r.round,
                r.split_partition,
                r.pivot_cell,
                r.cost_after.num_partitions,
                r.cost_after.total(),
                r.cost_after.masked_x,
                r.cost_after.leaked_x,
            );
        }
        for (i, (part, mask)) in outcome.partitions.iter().zip(&outcome.masks).enumerate() {
            let pats: Vec<String> = part.iter().map(|p| format!("P{}", p + 1)).collect();
            println!(
                "  partition {}: {{{}}} -> mask {} cell(s)",
                i + 1,
                pats.join(","),
                mask.count()
            );
        }
        println!(
            "  final: {} control bits (ceil {}), masking-only would be {}",
            outcome.cost.total(),
            outcome.cost.total_ceil(),
            xmap.config().mask_word_bits() * xmap.num_patterns(),
        );
    }
    println!("\nPaper reference: (10,2) -> partitions {{P2,P3,P7,P8}},{{P1,P4,P5}},{{P6}}, 23/28 masked, 57.5->58 bits;");
    println!("                 (10,1) -> stops after round 1 at 43.3->44 bits.");
}
