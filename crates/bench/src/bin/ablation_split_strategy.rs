//! **Ablation: split-selection strategy.** The paper splits on the
//! largest equal-count class (a pure correlation heuristic); the
//! `BestCost` extension evaluates every class representative and takes
//! the cheapest successor. On strongly inter-correlated profiles they
//! coincide; on weakly correlated ones BestCost can keep improving after
//! the greedy rule stalls.
//!
//! Run with: `cargo run --release -p xhc-bench --bin ablation_split_strategy`

use xhc_core::{PartitionEngine, SplitStrategy};
use xhc_misr::XCancelConfig;
use xhc_workload::WorkloadSpec;

fn main() {
    let cancel = XCancelConfig::paper_default();
    println!(
        "{:<28} {:<13} {:>11} {:>7} {:>13} {:>10}",
        "workload", "strategy", "partitions", "rounds", "total bits", "masked-X"
    );
    for (label, corr) in [
        ("strong correlation (0.9)", 0.9),
        ("moderate correlation (0.5)", 0.5),
        ("weak correlation (0.1)", 0.1),
    ] {
        let spec = WorkloadSpec {
            total_cells: 2405,
            num_chains: 5,
            num_patterns: 600,
            x_density: 0.0275,
            correlated_fraction: corr,
            num_groups: 3,
            group_pattern_fraction: 0.5,
            x_cell_fraction: 0.108,
            ..WorkloadSpec::default()
        };
        let xmap = spec.generate();
        for (name, strategy) in [
            ("LargestClass", SplitStrategy::LargestClass),
            ("BestCost", SplitStrategy::BestCost),
        ] {
            let outcome = PartitionEngine::with_options(
                cancel,
                xhc_core::PlanOptions {
                    strategy,
                    ..xhc_core::PlanOptions::default()
                },
            )
            .run(&xmap);
            println!(
                "{:<28} {:<13} {:>11} {:>7} {:>13.0} {:>10}",
                label,
                name,
                outcome.partitions.len(),
                outcome.rounds.len(),
                outcome.cost.total(),
                outcome.masked_x(),
            );
        }
    }
    println!("\nBestCost trades one cost evaluation per class per round for robustness to weak correlation.");
}
