//! **End-to-end circuit flow**: the whole stack on circuit-derived data —
//! generated netlists with real X sources, PODEM ATPG, captured
//! responses, hybrid partitioning, and the Table-1 quantities recomputed
//! from responses a simulator actually produced (not synthetic profiles).
//!
//! Run with: `cargo run --release -p xhc-bench --bin circuit_flow`

use xhc_atpg::{generate_tests, AtpgConfig};
use xhc_core::{evaluate_hybrid, CellSelection};
use xhc_logic::generate::CircuitSpec;
use xhc_misr::XCancelConfig;
use xhc_scan::{ScanConfig, ScanHarness};

fn main() {
    let cancel = XCancelConfig::new(16, 4);
    println!(
        "{:<6} {:>6} {:>6} {:>8} {:>8} {:>8} | {:>9} {:>9} {:>7} {:>9}",
        "seed",
        "gates",
        "depth",
        "faults",
        "cov%",
        "X-dens%",
        "impv[5]",
        "impv[12]",
        "parts",
        "masked%"
    );
    for seed in [2u64, 5, 11, 17, 23] {
        let circuit = CircuitSpec {
            num_inputs: 10,
            num_gates: 200,
            num_scan_flops: 32,
            num_shadow_flops: 3,
            num_buses: 2,
            seed,
            ..CircuitSpec::default()
        }
        .generate();
        let harness = ScanHarness::new(
            &circuit.netlist,
            ScanConfig::uniform(4, 8),
            circuit.scan_flops.clone(),
        )
        .expect("valid scan mapping");
        let faults = xhc_fault::all_output_faults(&circuit.netlist);
        let atpg = generate_tests(&harness, &faults, AtpgConfig::default());
        let responses = harness.run(&atpg.patterns);
        let xmap = responses.to_xmap();
        let report = evaluate_hybrid(&xmap, cancel, CellSelection::First);
        println!(
            "{:<6} {:>6} {:>6} {:>8} {:>7.1}% {:>7.2}% | {:>8.2}x {:>8.2}x {:>7} {:>8.1}%",
            seed,
            circuit.netlist.num_nodes(),
            circuit.netlist.logic_depth(),
            faults.len(),
            100.0 * atpg.testable_coverage(),
            100.0 * xmap.x_density(),
            report.impv_over_masking,
            report.impv_over_canceling,
            report.outcome.partitions.len(),
            100.0 * report.outcome.masked_x() as f64 / report.total_x.max(1) as f64,
        );
    }
    println!("\nthe hybrid's win holds on honestly-simulated responses, not just on the");
    println!("synthetic industrial profiles: circuit X's (uninitialized registers firing");
    println!("identically across patterns) are inter-correlated by construction of the");
    println!("hardware, which is the paper's whole premise.");
}
