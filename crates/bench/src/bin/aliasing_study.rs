//! **MISR aliasing study.** X-canceling extracts `q` X-free combinations
//! per halt instead of observing the full m-bit signature, so multi-bit
//! errors can alias (cancel out in every extracted combination). This
//! study measures the empirical escape probability as a function of the
//! number of X's and the error multiplicity — the quantitative face of
//! the compaction-vs-observability trade-off every scheme in the paper
//! accepts.
//!
//! Run with: `cargo run --release -p xhc-bench --bin aliasing_study`

use xhc_bits::BitVec;
use xhc_misr::{Taps, XCancelingMisr};
use xhc_prng::{SliceRandom, XhcRng};
use xhc_scan::ScanConfig;

fn main() {
    let scan = ScanConfig::uniform(8, 16); // 128 cells
    let m = 16;
    let trials = 20_000;
    let mut rng = XhcRng::seed_from_u64(2016);

    println!(
        "{:>5} {:>7} {:>10} | {:>10} {:>10} {:>10} {:>10}",
        "#X", "combos", "obs cells", "1-bit esc", "2-bit esc", "4-bit esc", "theory 2^-c"
    );
    for num_x in [0usize, 4, 8, 12] {
        let xc = XCancelingMisr::new(scan.clone(), m, Taps::default_for(m));
        let cells = scan.total_cells();
        let x_cells: Vec<usize> = (0..num_x).map(|i| i * cells / num_x.max(1)).collect();
        let obs = xc.observable_cells(&x_cells);
        let observable: Vec<usize> = (0..cells).filter(|&c| obs.get(c)).collect();

        // Combined symbol rows of the X-free combinations.
        let dep_rows = xc.rows();
        let combos = {
            let dep = xhc_misr::x_dependency_matrix(dep_rows, &x_cells);
            xhc_bits::gauss::x_free_combinations(&dep)
        };
        let combined: Vec<BitVec> = combos
            .iter()
            .map(|combo| {
                let mut acc = BitVec::zeros(cells);
                for bit in combo.iter_ones() {
                    acc.xor_with(&dep_rows[bit]);
                }
                acc
            })
            .collect();

        let escapes = |k: usize, rng: &mut XhcRng| -> f64 {
            if observable.len() < k {
                return f64::NAN;
            }
            let mut missed = 0usize;
            for _ in 0..trials {
                // A k-bit error among observable (non-X-dependent) cells.
                let mut picks = observable.clone();
                picks.shuffle(rng);
                let error: Vec<usize> = picks[..k].to_vec();
                let detected = combined
                    .iter()
                    .any(|row| error.iter().filter(|&&c| row.get(c)).count() % 2 == 1);
                if !detected {
                    missed += 1;
                }
            }
            missed as f64 / trials as f64
        };

        let e1 = escapes(1, &mut rng);
        let e2 = escapes(2, &mut rng);
        let e4 = escapes(4, &mut rng);
        println!(
            "{:>5} {:>7} {:>10} | {:>10.4} {:>10.4} {:>10.4} {:>10.4}",
            num_x,
            combined.len(),
            observable.len(),
            e1,
            e2,
            e4,
            0.5f64.powi(combined.len() as i32),
        );
        let _ = rng.next_u64(); // decorrelate rows
    }
    println!("\nsingle-bit errors at observable cells never escape (escape = 0 by");
    println!("construction). Multi-bit escapes exceed the 2^-combos random-code bound");
    println!("because the code is structured (cell pairs feeding the same MISR stage");
    println!("at aliasing distances cancel), but the trend is the point: fewer X's ->");
    println!("more combinations -> less aliasing. The hybrid's masking front end also");
    println!("*hardens* the signature, not just the control-bit budget.");
}
