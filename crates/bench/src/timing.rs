//! A minimal, dependency-free micro-benchmark harness.
//!
//! The workspace builds fully offline, so the benches under `benches/`
//! (declared with `harness = false`) use this instead of an external
//! framework. The harness auto-calibrates the iteration count to a small
//! wall-clock budget per case and reports min / median / mean, which is
//! plenty for tracking the relative cost of the hot paths over time.
//!
//! # Examples
//!
//! ```
//! use xhc_bench::timing::Harness;
//!
//! let mut h = Harness::from_args("demo");
//! h.bench("sum", || (0..1000u64).sum::<u64>());
//! ```

use std::time::{Duration, Instant};

/// Re-export of the optimization barrier used around bench inputs/outputs.
pub use std::hint::black_box;

/// A named group of micro-benchmarks with a per-case time budget.
pub struct Harness {
    group: String,
    filter: Option<String>,
    budget: Duration,
}

impl Harness {
    /// A harness for `group` reading the standard bench argv: an optional
    /// positional substring filter (cargo passes `--bench`; it is
    /// ignored) and `--budget-ms N` to change the per-case budget.
    pub fn from_args(group: &str) -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut filter = None;
        let mut budget_ms = 300u64;
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--bench" | "--test" => {}
                "--budget-ms" => {
                    if let Some(v) = args.get(i + 1).and_then(|v| v.parse().ok()) {
                        budget_ms = v;
                        i += 1;
                    }
                }
                a if !a.starts_with('-') => filter = Some(a.to_string()),
                _ => {}
            }
            i += 1;
        }
        Harness {
            group: group.to_string(),
            filter,
            budget: Duration::from_millis(budget_ms),
        }
    }

    /// Runs one case: calibrates an iteration count against the budget,
    /// then times each iteration and prints the summary line.
    pub fn bench<T>(&mut self, name: &str, mut f: impl FnMut() -> T) {
        let full = format!("{}/{}", self.group, name);
        if let Some(filter) = &self.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        // Calibration: one untimed warmup doubles as the cost estimate.
        let start = Instant::now();
        black_box(f());
        let est = start.elapsed().max(Duration::from_nanos(50));
        let iters = (self.budget.as_nanos() / est.as_nanos()).clamp(3, 10_000) as usize;

        let mut samples: Vec<Duration> = Vec::with_capacity(iters);
        for _ in 0..iters {
            let t = Instant::now();
            black_box(f());
            samples.push(t.elapsed());
        }
        samples.sort_unstable();
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        println!(
            "{full:<48} {iters:>6} iters   min {:>12}   median {:>12}   mean {:>12}",
            fmt_duration(min),
            fmt_duration(median),
            fmt_duration(mean),
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns}ns")
    } else if ns < 10_000_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_filters() {
        let mut h = Harness {
            group: "t".into(),
            filter: Some("nomatch".into()),
            budget: Duration::from_millis(1),
        };
        let mut calls = 0u32;
        h.bench("case", || calls += 1);
        assert_eq!(calls, 0, "filtered-out case must not run");

        let mut h = Harness {
            group: "t".into(),
            filter: None,
            budget: Duration::from_millis(1),
        };
        h.bench("case", || calls += 1);
        assert!(calls >= 4, "warmup + >=3 samples, got {calls}");
    }

    #[test]
    fn durations_format() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500ns");
        assert_eq!(fmt_duration(Duration::from_micros(500)), "500.00us");
        assert_eq!(fmt_duration(Duration::from_millis(500)), "500.00ms");
        assert_eq!(fmt_duration(Duration::from_secs(20)), "20.00s");
    }
}
