//! A minimal, dependency-free micro-benchmark harness.
//!
//! The workspace builds fully offline, so the benches under `benches/`
//! (declared with `harness = false`) use this instead of an external
//! framework. The harness auto-calibrates the iteration count to a small
//! wall-clock budget per case and reports min / median / mean, which is
//! plenty for tracking the relative cost of the hot paths over time.
//!
//! Passing `--json <path>` additionally writes the collected samples as a
//! machine-readable snapshot (one object per case with nanosecond
//! min/median/mean), which `scripts/bench_snapshot.sh` uses to track the
//! perf trajectory across PRs.
//!
//! # Examples
//!
//! ```
//! use xhc_bench::timing::Harness;
//!
//! let mut h = Harness::from_args("demo");
//! h.bench("sum", || (0..1000u64).sum::<u64>());
//! ```

use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Re-export of the optimization barrier used around bench inputs/outputs.
pub use std::hint::black_box;

/// Timing summary of one finished bench case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaseResult {
    /// Case name within the group (e.g. `cells/500`).
    pub name: String,
    /// Timed iterations (excludes the calibration warmup).
    pub iters: usize,
    /// Fastest iteration, in nanoseconds.
    pub min_ns: u128,
    /// Median iteration, in nanoseconds.
    pub median_ns: u128,
    /// 95th-percentile iteration (nearest-rank), in nanoseconds.
    pub p95_ns: u128,
    /// 99th-percentile iteration (nearest-rank), in nanoseconds.
    pub p99_ns: u128,
    /// Mean iteration, in nanoseconds.
    pub mean_ns: u128,
}

/// A named group of micro-benchmarks with a per-case time budget.
pub struct Harness {
    group: String,
    filter: Option<String>,
    budget: Duration,
    json_path: Option<PathBuf>,
    results: Vec<CaseResult>,
}

impl Harness {
    /// A harness for `group` reading the standard bench argv: an optional
    /// positional substring filter (cargo passes `--bench`; it is
    /// ignored), `--budget-ms N` to change the per-case budget, and
    /// `--json PATH` to write a machine-readable snapshot on exit.
    pub fn from_args(group: &str) -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut filter = None;
        let mut budget_ms = 300u64;
        let mut json_path = None;
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--bench" | "--test" => {}
                "--budget-ms" => {
                    if let Some(v) = args.get(i + 1).and_then(|v| v.parse().ok()) {
                        budget_ms = v;
                        i += 1;
                    }
                }
                "--json" => {
                    if let Some(p) = args.get(i + 1) {
                        json_path = Some(PathBuf::from(p));
                        i += 1;
                    }
                }
                a if !a.starts_with('-') => filter = Some(a.to_string()),
                _ => {}
            }
            i += 1;
        }
        Harness {
            group: group.to_string(),
            filter,
            budget: Duration::from_millis(budget_ms),
            json_path,
            results: Vec::new(),
        }
    }

    /// Runs one case: calibrates an iteration count against the budget,
    /// then times each iteration and prints the summary line.
    pub fn bench<T>(&mut self, name: &str, f: impl FnMut() -> T) {
        self.bench_capped(name, usize::MAX, f);
    }

    /// Like [`Harness::bench`] with the calibrated iteration count capped
    /// at `max_iters` (floored at 1). For multi-second cases — the
    /// full-size CKT workloads — where even the minimum calibration of 3
    /// iterations would dominate the whole bench run, a cap keeps the
    /// case affordable while still reporting a real median.
    pub fn bench_capped<T>(&mut self, name: &str, max_iters: usize, mut f: impl FnMut() -> T) {
        let full = format!("{}/{}", self.group, name);
        if let Some(filter) = &self.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        // Calibration: one untimed warmup doubles as the cost estimate.
        let start = Instant::now();
        black_box(f());
        let est = start.elapsed().max(Duration::from_nanos(50));
        let iters = ((self.budget.as_nanos() / est.as_nanos()).clamp(3, 10_000) as usize)
            .min(max_iters.max(1));

        let mut samples: Vec<Duration> = Vec::with_capacity(iters);
        for _ in 0..iters {
            let t = Instant::now();
            black_box(f());
            samples.push(t.elapsed());
        }
        samples.sort_unstable();
        let min = samples[0];
        let median = samples[samples.len() / 2];
        // Nearest-rank percentiles: ceil(q * n) as a 1-based rank.
        let p95 = samples[(samples.len() * 95).div_ceil(100) - 1];
        let p99 = samples[(samples.len() * 99).div_ceil(100) - 1];
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        println!(
            "{full:<48} {iters:>6} iters   min {:>12}   median {:>12}   p95 {:>12}   p99 {:>12}   mean {:>12}",
            fmt_duration(min),
            fmt_duration(median),
            fmt_duration(p95),
            fmt_duration(p99),
            fmt_duration(mean),
        );
        self.results.push(CaseResult {
            name: name.to_string(),
            iters,
            min_ns: min.as_nanos(),
            median_ns: median.as_nanos(),
            p95_ns: p95.as_nanos(),
            p99_ns: p99.as_nanos(),
            mean_ns: mean.as_nanos(),
        });
    }

    /// Results collected so far, in run order.
    pub fn results(&self) -> &[CaseResult] {
        &self.results
    }

    /// Renders the collected results as a JSON snapshot document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"group\": \"{}\",\n", escape(&self.group)));
        out.push_str(&format!("  \"budget_ms\": {},\n", self.budget.as_millis()));
        out.push_str("  \"cases\": [\n");
        for (i, c) in self.results.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"iters\": {}, \"min_ns\": {}, \"median_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}, \"mean_ns\": {}}}{}\n",
                escape(&c.name),
                c.iters,
                c.min_ns,
                c.median_ns,
                c.p95_ns,
                c.p99_ns,
                c.mean_ns,
                if i + 1 < self.results.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the JSON snapshot to the `--json` path, if one was given.
    /// Called automatically on drop; exposed for explicit flushing.
    pub fn write_json(&self) -> std::io::Result<()> {
        if let Some(path) = &self.json_path {
            std::fs::write(path, self.to_json())?;
            eprintln!("bench snapshot written to {}", path.display());
        }
        Ok(())
    }
}

impl Drop for Harness {
    fn drop(&mut self) {
        if let Err(e) = self.write_json() {
            eprintln!("failed to write bench snapshot: {e}");
        }
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns}ns")
    } else if ns < 10_000_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_harness(filter: Option<&str>) -> Harness {
        Harness {
            group: "t".into(),
            filter: filter.map(str::to_string),
            budget: Duration::from_millis(1),
            json_path: None,
            results: Vec::new(),
        }
    }

    #[test]
    fn bench_runs_and_filters() {
        let mut h = test_harness(Some("nomatch"));
        let mut calls = 0u32;
        h.bench("case", || calls += 1);
        assert_eq!(calls, 0, "filtered-out case must not run");
        assert!(h.results().is_empty());

        let mut h = test_harness(None);
        h.bench("case", || calls += 1);
        assert!(calls >= 4, "warmup + >=3 samples, got {calls}");
        assert_eq!(h.results().len(), 1);
        assert_eq!(h.results()[0].name, "case");
    }

    #[test]
    fn bench_capped_limits_iterations() {
        let mut h = test_harness(None);
        let mut calls = 0u32;
        h.bench_capped("capped", 2, || calls += 1);
        assert_eq!(calls, 3, "warmup + 2 capped samples, got {calls}");
        assert_eq!(h.results()[0].iters, 2);
        // A zero cap is floored to one timed iteration.
        h.bench_capped("floor", 0, || ());
        assert_eq!(h.results()[1].iters, 1);
    }

    #[test]
    fn json_snapshot_shape() {
        let mut h = test_harness(None);
        h.bench("a/b", || 1 + 1);
        h.bench("c", || 2 + 2);
        let json = h.to_json();
        assert!(json.contains("\"group\": \"t\""));
        assert!(json.contains("\"name\": \"a/b\""));
        assert!(json.contains("\"median_ns\":"));
        assert!(json.contains("\"p95_ns\":"));
        assert!(json.contains("\"p99_ns\":"));
        // Exactly one trailing-comma-free last element: valid JSON shape.
        assert_eq!(json.matches("\"name\"").count(), 2);
    }

    #[test]
    fn durations_format() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500ns");
        assert_eq!(fmt_duration(Duration::from_micros(500)), "500.00us");
        assert_eq!(fmt_duration(Duration::from_millis(500)), "500.00ms");
        assert_eq!(fmt_duration(Duration::from_secs(20)), "20.00s");
    }
}
