//! Shared fixtures and report formatting for the experiment-regeneration
//! binaries and criterion benches.
//!
//! One binary per table/figure of the paper (see `DESIGN.md`'s experiment
//! index):
//!
//! | paper artifact | binary |
//! |---|---|
//! | Table 1 (control bits + test time, CKT-A/B/C) | `table1` |
//! | Table 1 seed-robustness sweep | `table1_sweep` |
//! | Figs. 2–3 (symbolic MISR + Gaussian elimination) | `fig2_symbolic` |
//! | Figs. 4–6 (partitioning worked example) | `fig4_6_worked_example` |
//! | §3 inter-correlation analysis | `sec3_correlation` |
//! | §3 intra- vs. inter-correlation regimes | `intra_vs_inter` |
//! | §4/§5 coverage-preservation claim | `coverage_preservation` |
//! | partitioning depth U-curve | `ablation_partition_depth` |
//! | pivot-cell selection policies | `ablation_cell_selection` |
//! | MISR (m, q) sensitivity | `ablation_misr_config` |
//! | split-strategy extension (LargestClass vs BestCost) | `ablation_split_strategy` |
//! | baseline landscape incl. superset \[17,18\] and toggle \[15,16\] | `ablation_baselines` |
//! | MISR aliasing / signature hardening | `aliasing_study` |
//!
//! Run any of them with `cargo run --release -p xhc-bench --bin <name>`.
//!
//! Micro-benchmarks (`benches/`) run on the self-contained [`timing`]
//! harness: `cargo bench -p xhc-bench`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod timing;

use xhc_scan::{CellId, ScanConfig, XMap, XMapBuilder};

/// The paper's Fig. 4 X map (8 patterns, 5 chains × 3 cells, 28 X's).
pub fn fig4_xmap() -> XMap {
    let cfg = ScanConfig::uniform(5, 3);
    let mut b = XMapBuilder::new(cfg, 8);
    for p in [0, 3, 4, 5] {
        b.add_x(CellId::new(0, 0), p).unwrap();
        b.add_x(CellId::new(1, 0), p).unwrap();
        b.add_x(CellId::new(2, 0), p).unwrap();
    }
    for p in [0, 4] {
        b.add_x(CellId::new(1, 2), p).unwrap();
    }
    for p in [0, 1, 2, 3, 4, 6, 7] {
        b.add_x(CellId::new(3, 2), p).unwrap();
    }
    for p in [0, 1, 3, 4, 6, 7] {
        b.add_x(CellId::new(4, 1), p).unwrap();
    }
    b.add_x(CellId::new(4, 2), 5).unwrap();
    b.finish()
}

/// Formats a bit volume the way the paper's Table 1 does (millions).
pub fn fmt_mbits(bits: f64) -> String {
    format!("{:.2}M", bits / 1e6)
}

/// Prints a Markdown-ish table row.
pub fn row(cells: &[String]) -> String {
    cells.join(" | ")
}

/// Parses `--scale N` style flags from argv, with a default.
pub fn arg_flag(name: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Whether a bare flag like `--full` is present.
pub fn has_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_shape() {
        let m = fig4_xmap();
        assert_eq!(m.total_x(), 28);
        assert_eq!(m.num_x_cells(), 7);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_mbits(1_515_150_000.0), "1515.15M");
        assert_eq!(row(&["a".into(), "b".into()]), "a | b");
    }
}
