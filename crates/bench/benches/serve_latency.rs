//! Bench: end-to-end plan latency through the xhc-serve daemon over a
//! loopback socket — a cold request (engine runs), a cache hit (plan
//! served from the content-addressed store), and a raw fetch by hash.
//!
//! The cold case deletes the cached plan file before every iteration so
//! each request pays the full decode + lint + plan + encode pipeline;
//! the spread between cold and hit is what the cache buys.

use std::thread;

use xhc_bench::timing::{black_box, Harness};
use xhc_serve::{client, PlanStore, Server, ServerConfig};
use xhc_wire::{encode_xmap, hash_hex, plan_request_hash};
use xhc_workload::WorkloadSpec;

fn main() {
    let mut h = Harness::from_args("serve_latency");

    let store_dir = std::env::temp_dir().join(format!("xhc-bench-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let config = ServerConfig::new(&store_dir).with_workers(4);
    let server = Server::bind("127.0.0.1:0", config).expect("bind loopback");
    let addr = server.local_addr();
    let handle = server.handle();
    let join = thread::spawn(move || server.run());

    let spec = WorkloadSpec {
        total_cells: 800,
        num_chains: 8,
        num_patterns: 96,
        seed: 0xBEEF,
        ..WorkloadSpec::default()
    };
    let body = encode_xmap(&spec.generate());
    let key = plan_request_hash(&body, 32, 7, 0);
    let cached = PlanStore::open(&store_dir)
        .expect("open store")
        .path_for(key);
    let path = "/v1/plan?m=32&q=7&strategy=largest";

    h.bench("plan/cold", || {
        let _ = std::fs::remove_file(&cached);
        let r = client::post(addr, path, "application/octet-stream", black_box(&body))
            .expect("post plan");
        assert_eq!(r.status, 200, "{}", r.body_text());
        black_box(r.body.len())
    });

    // Warm the cache once, then every request is a pure store read.
    let warm = client::post(addr, path, "application/octet-stream", &body).expect("warm cache");
    assert_eq!(warm.status, 200);
    h.bench("plan/cache_hit", || {
        let r = client::post(addr, path, "application/octet-stream", black_box(&body))
            .expect("post plan");
        assert_eq!(r.status, 200);
        assert_eq!(r.header("x-xhc-cache"), Some("hit"));
        black_box(r.body.len())
    });

    let fetch_path = format!("/v1/plan/{}", hash_hex(key));
    h.bench("fetch/by_hash", || {
        let r = client::get(addr, black_box(&fetch_path)).expect("fetch plan");
        assert_eq!(r.status, 200);
        black_box(r.body.len())
    });

    handle.shutdown();
    let _ = join.join();
    let _ = std::fs::remove_dir_all(&store_dir);
}
