//! Bench: what a full lint pass costs relative to the pipeline work it
//! checks — the analyzer must stay cheap enough to run on every
//! engine invocation in CI.

#![deny(deprecated)]

use xhc_bench::timing::{black_box, Harness};
use xhc_core::PartitionEngine;
use xhc_lint::{check_netlist, check_outcome, check_xmap, LintConfig, NetlistFacts};
use xhc_logic::generate::CircuitSpec;
use xhc_misr::XCancelConfig;
use xhc_workload::WorkloadSpec;

fn main() {
    let mut h = Harness::from_args("lint_overhead");
    let lc = LintConfig::default();

    // Netlist rules: Tarjan SCC + reachability dominate.
    for gates in [200usize, 2_000, 20_000] {
        let circuit = CircuitSpec {
            num_inputs: 16,
            num_outputs: 8,
            num_gates: gates,
            num_scan_flops: 32,
            num_shadow_flops: 4,
            num_buses: 4,
            max_fanin: 4,
            seed: 7,
        }
        .generate();
        h.bench(&format!("netlist/{gates}_gates"), || {
            black_box(check_netlist(&lc, black_box(&circuit.netlist)))
        });
        // Facts extraction alone, to separate traversal from rule cost.
        h.bench(&format!("netlist_facts/{gates}_gates"), || {
            black_box(NetlistFacts::from_netlist(black_box(&circuit.netlist)))
        });
    }

    // X-map rules over growing workloads.
    for cells in [1_000usize, 8_000] {
        let spec = WorkloadSpec {
            total_cells: cells,
            num_chains: 8,
            num_patterns: 300,
            x_density: 0.02,
            ..WorkloadSpec::default()
        };
        let xmap = spec.generate();
        h.bench(&format!("xmap/{cells}_cells"), || {
            black_box(check_xmap(&lc, black_box(&xmap)))
        });

        // Plan rules vs. the engine run that produced the plan: the
        // lint/engine ratio is the overhead figure that matters.
        let cancel = XCancelConfig::paper_default();
        let outcome = PartitionEngine::new(cancel).run(&xmap);
        h.bench(&format!("outcome/{cells}_cells"), || {
            black_box(check_outcome(
                &lc,
                black_box(&xmap),
                black_box(&outcome),
                cancel,
            ))
        });
        h.bench(&format!("engine_baseline/{cells}_cells"), || {
            black_box(PartitionEngine::new(cancel).run(black_box(&xmap)))
        });
    }
}
