//! Criterion bench: the time-multiplexed X-canceling session, with and
//! without the hybrid's masking front end. Note this measures *simulator*
//! CPU, not tester time: masking reduces halts (the hardware win recorded
//! in each `SessionReport`), while the simulator's symbolic blocks grow
//! when fewer halts split them — the two costs move independently.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use xhc_core::{apply_partition_masks, PartitionEngine};
use xhc_misr::{CancelSession, Taps, XCancelConfig};
use xhc_workload::{materialize_responses, WorkloadSpec};

fn bench_session(c: &mut Criterion) {
    let spec = WorkloadSpec {
        total_cells: 256,
        num_chains: 8,
        num_patterns: 60,
        x_density: 0.03,
        ..WorkloadSpec::default()
    };
    let xmap = spec.generate();
    let responses = materialize_responses(&xmap, 11);
    let cancel = XCancelConfig::new(32, 7);
    let outcome = PartitionEngine::new(cancel).run(&xmap);
    let masked = apply_partition_masks(&responses, &outcome);
    let session = CancelSession::new(responses.config().clone(), cancel, Taps::default_for(32));

    let mut group = c.benchmark_group("cancel_session");
    group.sample_size(10);
    group.bench_with_input(
        BenchmarkId::from_parameter("raw_responses"),
        &responses,
        |b, r| b.iter(|| black_box(session.run(black_box(r)))),
    );
    group.bench_with_input(
        BenchmarkId::from_parameter("hybrid_masked"),
        &masked,
        |b, r| b.iter(|| black_box(session.run(black_box(r)))),
    );
    group.finish();
}

criterion_group!(benches, bench_session);
criterion_main!(benches);
