//! Bench: the time-multiplexed X-canceling session, with and without the
//! hybrid's masking front end. Note this measures *simulator* CPU, not
//! tester time: masking reduces halts (the hardware win recorded in each
//! `SessionReport`), while the simulator's symbolic blocks grow when
//! fewer halts split them — the two costs move independently.

#![deny(deprecated)]

use xhc_bench::timing::{black_box, Harness};
use xhc_core::{apply_partition_masks, PartitionEngine};
use xhc_misr::{CancelSession, Taps, XCancelConfig};
use xhc_workload::{materialize_responses, WorkloadSpec};

fn main() {
    let spec = WorkloadSpec {
        total_cells: 256,
        num_chains: 8,
        num_patterns: 60,
        x_density: 0.03,
        ..WorkloadSpec::default()
    };
    let xmap = spec.generate();
    let responses = materialize_responses(&xmap, 11);
    let cancel = XCancelConfig::new(32, 7);
    let outcome = PartitionEngine::new(cancel).run(&xmap);
    let masked = apply_partition_masks(&responses, &outcome);
    let session = CancelSession::new(responses.config().clone(), cancel, Taps::default_for(32));

    let mut h = Harness::from_args("cancel_session");
    h.bench("raw_responses", || {
        black_box(session.run(black_box(&responses)))
    });
    h.bench("hybrid_masked", || {
        black_box(session.run(black_box(&masked)))
    });
}
