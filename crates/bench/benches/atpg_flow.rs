//! Bench: the ATPG substrate — fault simulation with dropping and the
//! full two-phase generation flow on generated circuits.

use xhc_atpg::{generate_tests, AtpgConfig};
use xhc_bench::timing::{black_box, Harness};
use xhc_fault::{all_output_faults, fault_coverage, FullObservability};
use xhc_logic::generate::CircuitSpec;
use xhc_logic::Trit;
use xhc_scan::{ScanConfig, ScanHarness, TestPattern};

fn spec(gates: usize) -> CircuitSpec {
    CircuitSpec {
        num_inputs: 8,
        num_gates: gates,
        num_scan_flops: 16,
        num_shadow_flops: 2,
        num_buses: 1,
        seed: 5,
        ..CircuitSpec::default()
    }
}

fn main() {
    let mut h = Harness::from_args("atpg");

    for gates in [60usize, 150, 300] {
        let circuit = spec(gates).generate();
        let harness = ScanHarness::new(
            &circuit.netlist,
            ScanConfig::uniform(4, 4),
            circuit.scan_flops.clone(),
        )
        .expect("valid mapping");
        let faults = all_output_faults(&circuit.netlist);
        let patterns: Vec<TestPattern> = (0..16)
            .map(|i| TestPattern {
                scan_load: (0..16).map(|j| Trit::from_bool((i + j) % 3 == 0)).collect(),
                inputs: (0..8)
                    .map(|j| Trit::from_bool((i * 7 + j) % 2 == 0))
                    .collect(),
            })
            .collect();
        h.bench(&format!("fault_simulation/{gates}gates"), || {
            black_box(fault_coverage(
                black_box(&harness),
                black_box(&patterns),
                black_box(&faults),
                &FullObservability,
            ))
        });
    }

    for gates in [60usize, 150] {
        let circuit = spec(gates).generate();
        let harness = ScanHarness::new(
            &circuit.netlist,
            ScanConfig::uniform(4, 4),
            circuit.scan_flops.clone(),
        )
        .expect("valid mapping");
        let faults = all_output_faults(&circuit.netlist);
        h.bench(&format!("generate_tests/{gates}gates"), || {
            black_box(generate_tests(
                black_box(&harness),
                black_box(&faults),
                AtpgConfig::default(),
            ))
        });
    }
}
