//! Criterion bench: the ATPG substrate — fault simulation with dropping
//! and the full two-phase generation flow on generated circuits.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use xhc_atpg::{generate_tests, AtpgConfig};
use xhc_fault::{all_output_faults, fault_coverage, FullObservability};
use xhc_logic::generate::CircuitSpec;
use xhc_logic::Trit;
use xhc_scan::{ScanConfig, ScanHarness, TestPattern};

fn spec(gates: usize) -> CircuitSpec {
    CircuitSpec {
        num_inputs: 8,
        num_gates: gates,
        num_scan_flops: 16,
        num_shadow_flops: 2,
        num_buses: 1,
        seed: 5,
        ..CircuitSpec::default()
    }
}

fn bench_fault_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("atpg/fault_simulation");
    group.sample_size(10);
    for gates in [60usize, 150, 300] {
        let circuit = spec(gates).generate();
        let harness = ScanHarness::new(
            &circuit.netlist,
            ScanConfig::uniform(4, 4),
            circuit.scan_flops.clone(),
        )
        .expect("valid mapping");
        let faults = all_output_faults(&circuit.netlist);
        let patterns: Vec<TestPattern> = (0..16)
            .map(|i| TestPattern {
                scan_load: (0..16).map(|j| Trit::from_bool((i + j) % 3 == 0)).collect(),
                inputs: (0..8)
                    .map(|j| Trit::from_bool((i * 7 + j) % 2 == 0))
                    .collect(),
            })
            .collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{gates}gates")),
            &(harness, patterns, faults),
            |b, (harness, patterns, faults)| {
                b.iter(|| {
                    black_box(fault_coverage(
                        black_box(harness),
                        black_box(patterns),
                        black_box(faults),
                        &FullObservability,
                    ))
                })
            },
        );
    }
    group.finish();
}

fn bench_full_flow(c: &mut Criterion) {
    let mut group = c.benchmark_group("atpg/generate_tests");
    group.sample_size(10);
    for gates in [60usize, 150] {
        let circuit = spec(gates).generate();
        let harness = ScanHarness::new(
            &circuit.netlist,
            ScanConfig::uniform(4, 4),
            circuit.scan_flops.clone(),
        )
        .expect("valid mapping");
        let faults = all_output_faults(&circuit.netlist);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{gates}gates")),
            &(harness, faults),
            |b, (harness, faults)| {
                b.iter(|| {
                    black_box(generate_tests(
                        black_box(harness),
                        black_box(faults),
                        AtpgConfig::default(),
                    ))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fault_simulation, bench_full_flow);
criterion_main!(benches);
