//! Criterion bench: partitioning-engine runtime scaling with workload
//! size and X-density (the algorithmic cost of the paper's Algorithm 1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use xhc_core::{PartitionEngine, SplitStrategy};
use xhc_misr::XCancelConfig;
use xhc_workload::WorkloadSpec;

fn bench_partition_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition_engine/cells");
    for cells in [500usize, 2_000, 8_000] {
        let spec = WorkloadSpec {
            total_cells: cells,
            num_chains: 8,
            num_patterns: 300,
            x_density: 0.02,
            ..WorkloadSpec::default()
        };
        let xmap = spec.generate();
        group.bench_with_input(BenchmarkId::from_parameter(cells), &xmap, |b, xmap| {
            b.iter(|| {
                black_box(PartitionEngine::new(XCancelConfig::paper_default()).run(black_box(xmap)))
            })
        });
    }
    group.finish();
}

fn bench_partition_density(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition_engine/x_density");
    for density_pct in [1usize, 3, 6] {
        let spec = WorkloadSpec {
            total_cells: 2_000,
            num_chains: 8,
            num_patterns: 300,
            x_density: density_pct as f64 / 100.0,
            ..WorkloadSpec::default()
        };
        let xmap = spec.generate();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{density_pct}pct")),
            &xmap,
            |b, xmap| {
                b.iter(|| {
                    black_box(
                        PartitionEngine::new(XCancelConfig::paper_default()).run(black_box(xmap)),
                    )
                })
            },
        );
    }
    group.finish();
}

fn bench_split_strategy(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition_engine/strategy");
    let spec = WorkloadSpec {
        total_cells: 2_000,
        num_chains: 8,
        num_patterns: 300,
        x_density: 0.02,
        ..WorkloadSpec::default()
    };
    let xmap = spec.generate();
    for (name, strategy) in [
        ("largest_class", SplitStrategy::LargestClass),
        ("best_cost", SplitStrategy::BestCost),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &xmap, |b, xmap| {
            b.iter(|| {
                black_box(
                    PartitionEngine::new(XCancelConfig::paper_default())
                        .with_strategy(strategy)
                        .run(black_box(xmap)),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_partition_scaling,
    bench_partition_density,
    bench_split_strategy
);
criterion_main!(benches);
