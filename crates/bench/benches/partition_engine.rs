//! Bench: partitioning-engine runtime scaling with workload size and
//! X-density (the algorithmic cost of the paper's Algorithm 1).

#![deny(deprecated)]

use xhc_bench::timing::{black_box, Harness};
use xhc_core::{PartitionEngine, PlanOptions, SplitStrategy};
use xhc_misr::XCancelConfig;
use xhc_workload::WorkloadSpec;

fn main() {
    let mut h = Harness::from_args("partition_engine");

    for cells in [500usize, 2_000, 8_000] {
        let spec = WorkloadSpec {
            total_cells: cells,
            num_chains: 8,
            num_patterns: 300,
            x_density: 0.02,
            ..WorkloadSpec::default()
        };
        let xmap = spec.generate();
        h.bench(&format!("cells/{cells}"), || {
            black_box(PartitionEngine::new(XCancelConfig::paper_default()).run(black_box(&xmap)))
        });
    }

    for density_pct in [1usize, 3, 6] {
        let spec = WorkloadSpec {
            total_cells: 2_000,
            num_chains: 8,
            num_patterns: 300,
            x_density: density_pct as f64 / 100.0,
            ..WorkloadSpec::default()
        };
        let xmap = spec.generate();
        h.bench(&format!("x_density/{density_pct}pct"), || {
            black_box(PartitionEngine::new(XCancelConfig::paper_default()).run(black_box(&xmap)))
        });
    }

    let spec = WorkloadSpec {
        total_cells: 2_000,
        num_chains: 8,
        num_patterns: 300,
        x_density: 0.02,
        ..WorkloadSpec::default()
    };
    let xmap = spec.generate();
    for (name, strategy) in [
        ("largest_class", SplitStrategy::LargestClass),
        ("best_cost", SplitStrategy::BestCost),
    ] {
        let opts = PlanOptions {
            strategy,
            ..PlanOptions::default()
        };
        h.bench(&format!("strategy/{name}"), || {
            black_box(
                PartitionEngine::with_options(XCancelConfig::paper_default(), opts)
                    .run(black_box(&xmap)),
            )
        });
    }

    // The scaled BestCost case: a weakly-correlated profile with many
    // count classes, so every round evaluates many split candidates —
    // the hot path the flat/incremental kernel targets.
    let spec = WorkloadSpec {
        total_cells: 6_000,
        num_chains: 12,
        num_patterns: 400,
        x_density: 0.02,
        correlated_fraction: 0.5,
        num_groups: 10,
        ..WorkloadSpec::default()
    };
    let xmap = spec.generate();
    let best_cost = PlanOptions {
        strategy: SplitStrategy::BestCost,
        ..PlanOptions::default()
    };
    h.bench("strategy/best_cost_scaled", || {
        black_box(
            PartitionEngine::with_options(XCancelConfig::paper_default(), best_cost)
                .run(black_box(&xmap)),
        )
    });

    // The full-size paper circuits, unscaled: the workloads the sharded
    // + lane-unrolled kernel and the streaming matrix ingestion target.
    // Generation happens outside the timer; the iteration cap keeps the
    // multi-hundred-ms cases from eating the whole bench budget while
    // still reporting a real median (bench_gate.sh enforces an absolute
    // wall-clock budget on the CKT-A case).
    for (name, spec, cap) in [
        ("ckt_a", WorkloadSpec::ckt_a(), 7),
        ("ckt_b", WorkloadSpec::ckt_b(), 5),
        ("ckt_c", WorkloadSpec::ckt_c(), 5),
    ] {
        let xmap = spec.generate();
        h.bench_capped(&format!("strategy/best_cost_full_{name}"), cap, || {
            black_box(
                PartitionEngine::with_options(XCancelConfig::paper_default(), best_cost)
                    .run(black_box(&xmap)),
            )
        });
    }

    // Certificate overhead: plan once outside the timer, then time the
    // full certify + independent-check pass the daemon runs on every
    // write. The acceptance bound is <10% of plan time, measured by
    // scripts/verify_smoke.sh; this case tracks the absolute cost.
    let cancel = XCancelConfig::paper_default();
    let outcome = PartitionEngine::with_options(cancel, best_cost).run(&xmap);
    let plan_bytes = xhc_wire::encode_plan(&outcome, xmap.num_patterns());
    h.bench("verify_overhead/certify_and_check", || {
        let cert = xhc_verify::certify_plan(&xmap, cancel, &outcome, &plan_bytes, None);
        xhc_verify::check(&cert, &outcome, &plan_bytes, &xmap, cancel).unwrap();
        black_box(cert)
    });
}
