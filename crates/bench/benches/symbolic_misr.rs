//! Criterion bench: symbolic MISR unload (Fig. 2's machinery) and
//! per-pattern X-canceling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use xhc_logic::Trit;
use xhc_misr::{pattern_signature_rows, Taps, XCancelingMisr};
use xhc_scan::ScanConfig;

fn bench_signature_rows(c: &mut Criterion) {
    let mut group = c.benchmark_group("symbolic/pattern_signature_rows");
    for (chains, len) in [(8usize, 32usize), (16, 64), (32, 128)] {
        let cfg = ScanConfig::uniform(chains, len);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{chains}x{len}")),
            &cfg,
            |b, cfg| {
                b.iter(|| {
                    black_box(pattern_signature_rows(
                        black_box(cfg),
                        32,
                        Taps::default_for(32),
                    ))
                })
            },
        );
    }
    group.finish();
}

fn bench_cancel_pattern(c: &mut Criterion) {
    let mut group = c.benchmark_group("symbolic/cancel_pattern");
    for x_count in [4usize, 12, 24] {
        let cfg = ScanConfig::uniform(16, 32); // 512 cells
        let xc = XCancelingMisr::new(cfg, 32, Taps::default_for(32));
        let mut row = vec![Trit::Zero; 512];
        for i in 0..x_count {
            row[i * 512 / x_count] = Trit::X;
        }
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("x{x_count}")),
            &(xc, row),
            |b, (xc, row)| b.iter(|| black_box(xc.cancel_pattern(black_box(row)))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_signature_rows, bench_cancel_pattern);
criterion_main!(benches);
