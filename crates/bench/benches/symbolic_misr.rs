//! Bench: symbolic MISR unload (Fig. 2's machinery) and per-pattern
//! X-canceling.

use xhc_bench::timing::{black_box, Harness};
use xhc_logic::Trit;
use xhc_misr::{pattern_signature_rows, Taps, XCancelingMisr};
use xhc_scan::ScanConfig;

fn main() {
    let mut h = Harness::from_args("symbolic");

    for (chains, len) in [(8usize, 32usize), (16, 64), (32, 128)] {
        let cfg = ScanConfig::uniform(chains, len);
        h.bench(&format!("pattern_signature_rows/{chains}x{len}"), || {
            black_box(pattern_signature_rows(
                black_box(&cfg),
                32,
                Taps::default_for(32),
            ))
        });
    }

    for x_count in [4usize, 12, 24] {
        let cfg = ScanConfig::uniform(16, 32); // 512 cells
        let xc = XCancelingMisr::new(cfg, 32, Taps::default_for(32));
        let mut row = vec![Trit::Zero; 512];
        for i in 0..x_count {
            row[i * 512 / x_count] = Trit::X;
        }
        h.bench(&format!("cancel_pattern/x{x_count}"), || {
            black_box(xc.cancel_pattern(black_box(&row)))
        });
    }
}
