//! Bench: GF(2) Gaussian elimination / X-free-combination extraction —
//! the per-halt cost of the X-canceling MISR.

use xhc_bench::timing::{black_box, Harness};
use xhc_bits::{gauss, BitMatrix, BitVec};
use xhc_prng::XhcRng;

fn random_matrix(rows: usize, cols: usize, seed: u64) -> BitMatrix {
    let mut rng = XhcRng::seed_from_u64(seed);
    BitMatrix::from_rows(
        (0..rows)
            .map(|_| BitVec::from_bools((0..cols).map(|_| rng.gen_bool(0.3))))
            .collect(),
    )
}

fn main() {
    let mut h = Harness::from_args("gauss");
    // The paper's configuration: a 32-bit MISR halting with 25 X's.
    for (m, x) in [(32usize, 25usize), (64, 57), (128, 100)] {
        let dep = random_matrix(m, x, 42);
        h.bench(&format!("x_free_combinations/m{m}_x{x}"), || {
            black_box(gauss::x_free_combinations(black_box(&dep)))
        });
    }
    for n in [32usize, 128, 512] {
        let m = random_matrix(n, n, 7);
        h.bench(&format!("rank/{n}"), || black_box(black_box(&m).rank()));
    }
}
