//! Criterion bench: GF(2) Gaussian elimination / X-free-combination
//! extraction — the per-halt cost of the X-canceling MISR.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use xhc_bits::{gauss, BitMatrix, BitVec};

fn random_matrix(rows: usize, cols: usize, seed: u64) -> BitMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    BitMatrix::from_rows(
        (0..rows)
            .map(|_| BitVec::from_bools((0..cols).map(|_| rng.gen_bool(0.3))))
            .collect(),
    )
}

fn bench_x_free_combinations(c: &mut Criterion) {
    let mut group = c.benchmark_group("gauss/x_free_combinations");
    // The paper's configuration: a 32-bit MISR halting with 25 X's.
    for (m, x) in [(32usize, 25usize), (64, 57), (128, 100)] {
        let dep = random_matrix(m, x, 42);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("m{m}_x{x}")),
            &dep,
            |b, dep| b.iter(|| black_box(gauss::x_free_combinations(black_box(dep)))),
        );
    }
    group.finish();
}

fn bench_rank(c: &mut Criterion) {
    let mut group = c.benchmark_group("gauss/rank");
    for n in [32usize, 128, 512] {
        let m = random_matrix(n, n, 7);
        group.bench_with_input(BenchmarkId::from_parameter(n), &m, |b, m| {
            b.iter(|| black_box(black_box(m).rank()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_x_free_combinations, bench_rank);
criterion_main!(benches);
