//! Criterion bench: the full Table-1 evaluation pipeline (workload
//! generation + partitioning + accounting) on 1/15-scale CKT profiles.
//! The `table1` binary prints the actual table; this measures its cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use xhc_core::{evaluate_hybrid, CellSelection};
use xhc_misr::XCancelConfig;
use xhc_workload::WorkloadSpec;

fn scaled(mut spec: WorkloadSpec) -> WorkloadSpec {
    spec.total_cells /= 15;
    spec.num_chains = (spec.num_chains / 15).max(4);
    spec.num_patterns /= 15;
    spec
}

fn bench_table1_rows(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/evaluate_hybrid");
    group.sample_size(10);
    for spec in [
        scaled(WorkloadSpec::ckt_a()),
        scaled(WorkloadSpec::ckt_b()),
        scaled(WorkloadSpec::ckt_c()),
    ] {
        let xmap = spec.generate();
        group.bench_with_input(BenchmarkId::from_parameter(spec.name), &xmap, |b, xmap| {
            b.iter(|| {
                black_box(evaluate_hybrid(
                    black_box(xmap),
                    XCancelConfig::paper_default(),
                    CellSelection::First,
                ))
            })
        });
    }
    group.finish();
}

fn bench_workload_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/workload_generation");
    group.sample_size(10);
    {
        let spec = scaled(WorkloadSpec::ckt_b());
        group.bench_with_input(BenchmarkId::from_parameter(spec.name), &spec, |b, spec| {
            b.iter(|| black_box(spec.generate()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table1_rows, bench_workload_generation);
criterion_main!(benches);
