//! Bench: the full Table-1 evaluation pipeline (workload generation +
//! partitioning + accounting) on 1/15-scale CKT profiles. The `table1`
//! binary prints the actual table; this measures its cost.

use xhc_bench::timing::{black_box, Harness};
use xhc_core::{evaluate_hybrid, CellSelection};
use xhc_misr::XCancelConfig;
use xhc_workload::WorkloadSpec;

fn scaled(mut spec: WorkloadSpec) -> WorkloadSpec {
    spec.total_cells /= 15;
    spec.num_chains = (spec.num_chains / 15).max(4);
    spec.num_patterns /= 15;
    spec
}

fn main() {
    let mut h = Harness::from_args("table1");

    for spec in [
        scaled(WorkloadSpec::ckt_a()),
        scaled(WorkloadSpec::ckt_b()),
        scaled(WorkloadSpec::ckt_c()),
    ] {
        let xmap = spec.generate();
        h.bench(&format!("evaluate_hybrid/{}", spec.name), || {
            black_box(evaluate_hybrid(
                black_box(&xmap),
                XCancelConfig::paper_default(),
                CellSelection::First,
            ))
        });
    }

    let spec = scaled(WorkloadSpec::ckt_b());
    h.bench(&format!("workload_generation/{}", spec.name), || {
        black_box(spec.generate())
    });
}
