//! ATPG stress tests on structured arithmetic circuits: every stuck-at
//! fault of a ripple-carry adder and an array multiplier must be covered
//! by the two-phase flow, and PODEM's untestable verdicts must be empty
//! (arithmetic circuits have no redundant logic in these constructions).

use xhc_atpg::{generate_tests, AtpgConfig};
use xhc_fault::{all_output_faults, fault_coverage, FullObservability};
use xhc_logic::{samples, FlopInit, GateKind, Netlist, NetlistBuilder, NodeId};
use xhc_scan::{ScanConfig, ScanHarness};

/// Rebuilds a combinational netlist with its outputs captured into scan
/// flops (the standard scan-test wrapper the fault simulator observes).
fn wrap_with_capture_flops(
    build: impl Fn(&mut NetlistBuilder) -> Vec<NodeId>,
) -> (Netlist, Vec<usize>) {
    let mut b = NetlistBuilder::new();
    let outputs = build(&mut b);
    let mut flops = Vec::new();
    for &o in &outputs {
        let f = b.flop(FlopInit::Zero);
        b.connect_flop_d(f, o);
        flops.push(f);
    }
    let nl = b.finish().expect("wrapper is valid");
    let indices = flops
        .iter()
        .map(|&f| nl.flop_index(f).expect("flop registered"))
        .collect();
    (nl, indices)
}

fn build_adder(b: &mut NetlistBuilder, n: usize) -> Vec<NodeId> {
    let a: Vec<_> = (0..n).map(|_| b.input()).collect();
    let bb: Vec<_> = (0..n).map(|_| b.input()).collect();
    let mut carry = b.input();
    let mut outs = Vec::new();
    for i in 0..n {
        let axb = b.gate(GateKind::Xor, vec![a[i], bb[i]]);
        let sum = b.gate(GateKind::Xor, vec![axb, carry]);
        let t1 = b.gate(GateKind::And, vec![a[i], bb[i]]);
        let t2 = b.gate(GateKind::And, vec![axb, carry]);
        carry = b.gate(GateKind::Or, vec![t1, t2]);
        outs.push(sum);
    }
    outs.push(carry);
    outs
}

#[test]
fn adder_full_coverage() {
    let (nl, flops) = wrap_with_capture_flops(|b| build_adder(b, 4));
    let harness = ScanHarness::new(&nl, ScanConfig::uniform(5, 1), flops).unwrap();
    let faults = all_output_faults(&nl);
    let result = generate_tests(&harness, &faults, AtpgConfig::default());
    assert!(result.untestable.is_empty(), "adder has no redundancy");
    assert!(result.aborted.is_empty());
    assert_eq!(
        result.detected, result.total_faults,
        "full coverage expected"
    );

    // And the pattern set really does it (independent re-simulation).
    let report = fault_coverage(&harness, &result.patterns, &faults, &FullObservability);
    assert_eq!(report.detected, faults.len());
}

#[test]
fn adder_patterns_are_compact() {
    // Sanity on the flow's economics: covering an n-bit adder's ~O(n)
    // fault sites must not need anywhere near one pattern per fault.
    let (nl, flops) = wrap_with_capture_flops(|b| build_adder(b, 6));
    let harness = ScanHarness::new(&nl, ScanConfig::uniform(7, 1), flops).unwrap();
    let faults = all_output_faults(&nl);
    let result = generate_tests(&harness, &faults, AtpgConfig::default());
    assert_eq!(result.detected, result.total_faults);
    assert!(
        result.patterns.len() * 3 < faults.len(),
        "{} patterns for {} faults",
        result.patterns.len(),
        faults.len()
    );
}

#[test]
fn multiplier_coverage_via_library_sample() {
    // The library's array multiplier exercised through its own netlist:
    // wrap samples::array_multiplier(2) by re-driving its outputs into
    // flops is impossible post-hoc, so rebuild inline like the adder.
    let (nl, flops) = wrap_with_capture_flops(|b| {
        let n = 2;
        let a: Vec<_> = (0..n).map(|_| b.input()).collect();
        let bb: Vec<_> = (0..n).map(|_| b.input()).collect();
        let zero = b.constant(xhc_logic::Trit::Zero);
        let acc: Vec<_> = (0..n)
            .map(|j| b.gate(GateKind::And, vec![a[j], bb[0]]))
            .collect();
        let mut product = vec![acc[0]];
        let mut carry_word = vec![acc[1], zero];
        for b_i in bb.iter().skip(1) {
            let pp: Vec<_> = (0..n)
                .map(|j| b.gate(GateKind::And, vec![a[j], *b_i]))
                .collect();
            let mut next = Vec::new();
            let mut carry = zero;
            for j in 0..n {
                let x = b.gate(GateKind::Xor, vec![pp[j], carry_word[j]]);
                let s = b.gate(GateKind::Xor, vec![x, carry]);
                let t1 = b.gate(GateKind::And, vec![pp[j], carry_word[j]]);
                let t2 = b.gate(GateKind::And, vec![x, carry]);
                carry = b.gate(GateKind::Or, vec![t1, t2]);
                next.push(s);
            }
            next.push(carry);
            product.push(next[0]);
            carry_word = next[1..].to_vec();
        }
        product.extend(carry_word);
        product
    });
    let cells = nl.num_flops();
    let harness = ScanHarness::new(&nl, ScanConfig::uniform(cells, 1), flops).unwrap();
    let faults = all_output_faults(&nl);
    let result = generate_tests(&harness, &faults, AtpgConfig::default());
    assert!(result.aborted.is_empty());
    // The 2x2 array multiplier contains redundant sites (the top carry
    // chain with a constant-0 operand); PODEM must *prove* those
    // untestable rather than abort, and cover everything else.
    assert_eq!(
        result.detected + result.untestable.len(),
        result.total_faults,
        "every fault either covered or proven untestable"
    );
    assert!((result.testable_coverage() - 1.0).abs() < 1e-9);

    // The library constructor agrees with the inline build.
    let lib = samples::array_multiplier(2);
    assert_eq!(lib.num_outputs(), 4);
}
