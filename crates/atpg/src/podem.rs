//! PODEM (path-oriented decision making) deterministic test generation.
//!
//! Operates on the standard scan-test combinational view: assignable
//! inputs are the primary inputs plus the scan-loaded cells; observation
//! points are the captured scan cells. Unassigned inputs are `X`; Kleene
//! simulation is monotonic (a known value never changes when more inputs
//! are assigned), which is what makes PODEM's pruning sound.

use xhc_fault::Fault;
use xhc_logic::{GateKind, Node, NodeId, Simulator, Trit};
use xhc_scan::{ScanHarness, TestPattern};

/// An assignable input of the combinational view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum InputRef {
    /// Primary input by index.
    Pi(usize),
    /// Scan cell by linear index.
    Cell(usize),
}

/// A partial assignment over the combinational view's inputs.
#[derive(Debug, Clone)]
struct Assignment {
    pis: Vec<Option<bool>>,
    cells: Vec<Option<bool>>,
}

impl Assignment {
    fn new(num_pis: usize, num_cells: usize) -> Self {
        Assignment {
            pis: vec![None; num_pis],
            cells: vec![None; num_cells],
        }
    }

    fn set(&mut self, r: InputRef, v: Option<bool>) {
        match r {
            InputRef::Pi(i) => self.pis[i] = v,
            InputRef::Cell(i) => self.cells[i] = v,
        }
    }

    fn pi_trits(&self) -> Vec<Trit> {
        self.pis
            .iter()
            .map(|o| o.map_or(Trit::X, Trit::from_bool))
            .collect()
    }

    fn cell_trits(&self) -> Vec<Trit> {
        self.cells
            .iter()
            .map(|o| o.map_or(Trit::X, Trit::from_bool))
            .collect()
    }
}

/// Why PODEM gave up on a fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PodemFailure {
    /// The search space was exhausted: the fault is untestable under this
    /// scan configuration (a proof, given a complete search).
    Untestable,
    /// The backtrack budget ran out before a verdict.
    Aborted,
}

/// A PODEM test generator bound to a scan harness.
///
/// # Examples
///
/// ```
/// use xhc_atpg::Podem;
/// use xhc_fault::Fault;
/// use xhc_logic::samples;
/// use xhc_scan::{ScanConfig, ScanHarness};
///
/// let (netlist, scan_flops) = samples::x_prone_sequential();
/// let harness = ScanHarness::new(&netlist, ScanConfig::uniform(2, 2), scan_flops)?;
/// let podem = Podem::new(&harness);
/// let fault = Fault::sa0(netlist.inputs()[0]);
/// if let Ok(pattern) = podem.generate(fault) {
///     assert_eq!(pattern.scan_load.len(), 4);
/// }
/// # Ok::<(), xhc_scan::HarnessError>(())
/// ```
#[derive(Debug)]
pub struct Podem<'h, 'n> {
    harness: &'h ScanHarness<'n>,
    max_backtracks: usize,
    /// Per node, its combinational consumers plus flop nodes fed by it —
    /// for the X-path pruning check.
    fanout: Vec<Vec<NodeId>>,
    /// Flop nodes that are captured (mapped to scan cells).
    observed_flops: Vec<bool>,
    /// SCOAP measures guiding choice ordering (never correctness).
    testability: crate::scoap::Testability,
}

impl<'h, 'n> Podem<'h, 'n> {
    /// A generator with the default backtrack budget (1000).
    pub fn new(harness: &'h ScanHarness<'n>) -> Self {
        let netlist = harness.netlist();
        let mut fanout: Vec<Vec<NodeId>> = vec![Vec::new(); netlist.num_nodes()];
        for (id, node) in netlist.iter_nodes() {
            let inputs: Vec<NodeId> = match node {
                Node::Gate { inputs, .. } => inputs.clone(),
                Node::TriBuf { enable, data } => vec![*enable, *data],
                Node::Bus { drivers } => drivers.clone(),
                Node::Flop { d: Some(d), .. } => vec![*d],
                _ => Vec::new(),
            };
            for src in inputs {
                fanout[src.index()].push(id);
            }
        }
        let mut observed_flops = vec![false; netlist.num_nodes()];
        let cfg = harness.config();
        for ci in 0..cfg.total_cells() {
            let flop = harness.flop_of(cfg.cell_at(ci));
            let node = netlist.flops()[flop];
            observed_flops[node.index()] = true;
        }
        Podem {
            harness,
            max_backtracks: 1000,
            fanout,
            observed_flops,
            testability: crate::scoap::Testability::compute(harness),
        }
    }

    /// Overrides the backtrack budget.
    pub fn with_max_backtracks(mut self, budget: usize) -> Self {
        self.max_backtracks = budget;
        self
    }

    /// Tries to generate a pattern detecting `fault` at the captured scan
    /// cells. Unassigned positions of the returned pattern are `X` — the
    /// caller typically random-fills them.
    ///
    /// # Errors
    ///
    /// [`PodemFailure::Untestable`] when the search space is exhausted,
    /// [`PodemFailure::Aborted`] when the backtrack budget runs out.
    pub fn generate(&self, fault: Fault) -> Result<TestPattern, PodemFailure> {
        let netlist = self.harness.netlist();
        let num_cells = self.harness.config().total_cells();
        let mut assign = Assignment::new(netlist.num_inputs(), num_cells);
        let mut good = Simulator::new(netlist);
        let mut bad = Simulator::new(netlist);
        // Decision stack: (input, value, tried_complement).
        let mut stack: Vec<(InputRef, bool, bool)> = Vec::new();
        let mut backtracks = 0usize;

        loop {
            self.simulate(&assign, fault, &mut good, &mut bad);

            if self.detected(&good, &bad) {
                return Ok(TestPattern {
                    scan_load: assign.cell_trits(),
                    inputs: assign.pi_trits(),
                });
            }

            let next = self
                .objectives(fault, &good, &bad)
                .into_iter()
                .find_map(|(node, v)| self.backtrace(node, v, &assign, &good));

            match next {
                Some((input, value)) => {
                    assign.set(input, Some(value));
                    stack.push((input, value, false));
                }
                None => {
                    // Conflict or dead end: backtrack. An empty stack is a
                    // completed search — Untestable — independent of the
                    // budget, which only caps *work*, not verdicts that
                    // are already proven.
                    loop {
                        match stack.pop() {
                            Some((input, value, false)) => {
                                backtracks += 1;
                                if backtracks > self.max_backtracks {
                                    return Err(PodemFailure::Aborted);
                                }
                                // Try the complement.
                                assign.set(input, Some(!value));
                                stack.push((input, !value, true));
                                break;
                            }
                            Some((input, _, true)) => {
                                assign.set(input, None);
                                // Keep popping.
                            }
                            None => return Err(PodemFailure::Untestable),
                        }
                    }
                }
            }
        }
    }

    fn simulate(
        &self,
        assign: &Assignment,
        fault: Fault,
        good: &mut Simulator<'_>,
        bad: &mut Simulator<'_>,
    ) {
        let inputs = assign.pi_trits();
        let cells = assign.cell_trits();
        let load = |sim: &mut Simulator<'_>| {
            sim.reset();
            for (cell_idx, &v) in cells.iter().enumerate() {
                let flop = self
                    .harness
                    .flop_of(self.harness.config().cell_at(cell_idx));
                sim.set_flop_state(flop, v);
            }
        };
        load(good);
        load(bad);
        good.eval(&inputs);
        bad.eval_forced(&inputs, &[(fault.node, fault.forced_value())]);
    }

    fn detected(&self, good: &Simulator<'_>, bad: &Simulator<'_>) -> bool {
        let g = good.flop_next();
        let b = bad.flop_next();
        (0..self.harness.config().total_cells()).any(|cell_idx| {
            let flop = self
                .harness
                .flop_of(self.harness.config().cell_at(cell_idx));
            let (gv, bv) = (g[flop], b[flop]);
            gv.is_known() && bv.is_known() && gv != bv
        })
    }

    /// Candidate objectives `(node, value)` in the good machine, best
    /// first; empty when the current partial assignment cannot be
    /// extended usefully. The caller tries each in turn — a single
    /// unreachable objective must not force a decision backtrack.
    fn objectives(
        &self,
        fault: Fault,
        good: &Simulator<'_>,
        bad: &Simulator<'_>,
    ) -> Vec<(NodeId, bool)> {
        // X-path pruning (sound): the error can only ever reach a captured
        // flop through nodes that currently carry the error or are still
        // X — known, agreeing nodes are frozen by Kleene monotonicity. No
        // such path means no extension of this assignment detects. Runs
        // before the activation objective so structurally dead faults are
        // refuted without enumerating assignments.
        if !self.error_can_reach_observation(fault, good, bad) {
            return Vec::new();
        }
        let g_at_fault = good.value(fault.node);
        match g_at_fault.to_bool() {
            None => {
                // Not yet activated: drive the fault site to the
                // activation value.
                return vec![(fault.node, !fault.stuck_at_one)];
            }
            Some(v) if v == fault.stuck_at_one => {
                // Good machine already equals the stuck value; Kleene
                // monotonicity says no extension can activate the fault.
                return Vec::new();
            }
            Some(_) => {}
        }
        // Activated: find a D-frontier gate and push the error through,
        // preferring the most observable frontier gate (lowest SCOAP CO).
        let netlist = self.harness.netlist();
        let has_error = |id: NodeId| {
            let (g, b) = (good.value(id), bad.value(id));
            g.is_known() && b.is_known() && g != b
        };
        let mut frontier: Vec<(u32, NodeId)> = netlist
            .iter_nodes()
            .filter(|(id, node)| {
                let inputs: Vec<NodeId> = match node {
                    Node::Gate { inputs, .. } => inputs.clone(),
                    Node::TriBuf { enable, data } => vec![*enable, *data],
                    Node::Bus { drivers } => drivers.clone(),
                    _ => return false,
                };
                let out_open = good.value(*id).is_x() || bad.value(*id).is_x();
                out_open && inputs.iter().any(|&i| has_error(i))
            })
            .map(|(id, _)| (self.testability.co(id), id))
            .collect();
        frontier.sort_unstable();
        let mut candidates: Vec<(NodeId, bool)> = Vec::new();
        for (_, id) in frontier {
            let node = netlist.node(id);
            {
                let inputs: Vec<NodeId> = match node {
                    Node::Gate { inputs, .. } => inputs.clone(),
                    Node::TriBuf { enable, data } => vec![*enable, *data],
                    Node::Bus { drivers } => drivers.clone(),
                    _ => continue,
                };
                // Set some X side-input to the gate's non-controlling value.
                let noncontrolling = match node {
                    Node::Gate { kind, .. } => match kind {
                        GateKind::And | GateKind::Nand => true,
                        GateKind::Or | GateKind::Nor => false,
                        GateKind::Xor | GateKind::Xnor => false,
                        GateKind::Not | GateKind::Buf => continue, // no side input
                        GateKind::Mux => {
                            // Route the erroring data input by steering the
                            // select; an erroring select needs data to differ,
                            // handled by the generic X-input rule below.
                            false
                        }
                    },
                    Node::TriBuf { .. } => true, // enable the driver
                    Node::Bus { drivers } => {
                        // Propagating an error onto a bus requires *disabling*
                        // every competing driver whose value is still X.
                        for &d in drivers {
                            if good.value(d).is_x() && !has_error(d) {
                                if let Node::TriBuf { enable, .. } = netlist.node(d) {
                                    if good.value(*enable).is_x() {
                                        candidates.push((*enable, false));
                                    }
                                }
                            }
                        }
                        continue;
                    }
                    _ => continue, // sources were skipped above
                };
                if let Node::Gate {
                    kind: GateKind::Mux,
                    inputs: mux_inputs,
                } = node
                {
                    let (sel, a, b2) = (mux_inputs[0], mux_inputs[1], mux_inputs[2]);
                    if good.value(sel).is_x() {
                        // Steer toward whichever data input carries the error.
                        let want_b = has_error(b2);
                        candidates.push((sel, want_b));
                    }
                    for d in [a, b2] {
                        if good.value(d).is_x() {
                            candidates.push((d, false));
                        }
                    }
                    continue;
                }
                // Prefer the side input that is cheapest to drive to the
                // non-controlling value; skip uncontrollable ones (an INF
                // side input, e.g. a shadow flop, can never be satisfied).
                let mut sides: Vec<NodeId> = inputs
                    .iter()
                    .copied()
                    .filter(|&i| good.value(i).is_x() && !has_error(i))
                    .filter(|&i| self.testability.cc(i, noncontrolling) < crate::scoap::INF)
                    .collect();
                sides.sort_by_key(|&i| self.testability.cc(i, noncontrolling));
                for side in sides {
                    candidates.push((side, noncontrolling));
                }
            }
        }
        candidates
    }

    /// Whether a path of error-carrying or still-X nodes connects the
    /// fault site to some captured flop (through its D input). Absence of
    /// such a path proves the fault undetectable under every extension of
    /// the current assignment.
    fn error_can_reach_observation(
        &self,
        fault: Fault,
        good: &Simulator<'_>,
        bad: &Simulator<'_>,
    ) -> bool {
        let netlist = self.harness.netlist();
        let candidate = |id: NodeId| {
            let (g, b) = (good.value(id), bad.value(id));
            (g.is_known() && b.is_known() && g != b) || g.is_x() || b.is_x()
        };
        let mut visited = vec![false; netlist.num_nodes()];
        let mut queue = vec![fault.node];
        visited[fault.node.index()] = true;
        while let Some(n) = queue.pop() {
            for &f in &self.fanout[n.index()] {
                if visited[f.index()] {
                    continue;
                }
                if self.observed_flops[f.index()] {
                    // Reached a captured flop through a live D path.
                    return true;
                }
                if matches!(netlist.node(f), Node::Flop { .. }) {
                    // Unobserved (shadow) flop: a sink for this cycle.
                    continue;
                }
                if candidate(f) {
                    visited[f.index()] = true;
                    queue.push(f);
                }
            }
        }
        false
    }

    /// Walks an objective back to an unassigned primary input or scan
    /// cell, flipping the target value through inverting gates. When a
    /// path dead-ends on an uncontrollable node (a shadow flop, a
    /// constant, an already-assigned input), sibling fan-ins are tried —
    /// the netlist is a DAG, so the recursion terminates.
    fn backtrace(
        &self,
        node: NodeId,
        value: bool,
        assign: &Assignment,
        good: &Simulator<'_>,
    ) -> Option<(InputRef, bool)> {
        let netlist = self.harness.netlist();
        // A node with a known value cannot be changed by more assignments.
        if good.value(node).is_known() {
            return None;
        }
        match netlist.node(node) {
            Node::Input(idx) => match assign.pis[*idx] {
                None => Some((InputRef::Pi(*idx), value)),
                Some(_) => None,
            },
            Node::Flop { .. } => {
                // Scan cell if mapped; shadow flops are uncontrollable.
                let cfg = self.harness.config();
                let flop = netlist.flop_index(node).expect("flop is registered");
                let cell = (0..cfg.total_cells())
                    .find(|&ci| self.harness.flop_of(cfg.cell_at(ci)) == flop);
                match cell {
                    Some(ci) if assign.cells[ci].is_none() => Some((InputRef::Cell(ci), value)),
                    _ => None,
                }
            }
            Node::Const(_) => None,
            Node::Gate { kind, inputs } => {
                let next_value = match kind {
                    GateKind::And | GateKind::Or | GateKind::Buf => value,
                    GateKind::Nand | GateKind::Nor | GateKind::Not => !value,
                    GateKind::Xor | GateKind::Xnor | GateKind::Mux => value,
                };
                if *kind == GateKind::Mux {
                    let (sel, a, b) = (inputs[0], inputs[1], inputs[2]);
                    return match good.value(sel).to_bool() {
                        Some(false) => self.backtrace(a, value, assign, good),
                        Some(true) => self.backtrace(b, value, assign, good),
                        None => self
                            .backtrace(sel, false, assign, good)
                            .or_else(|| self.backtrace(a, value, assign, good))
                            .or_else(|| self.backtrace(b, value, assign, good)),
                    };
                }
                // SCOAP-ordered: try the input that is cheapest to drive
                // to the needed value first (guidance only; fallback
                // iteration keeps completeness).
                let mut candidates: Vec<NodeId> = inputs
                    .iter()
                    .copied()
                    .filter(|&i| good.value(i).is_x())
                    .collect();
                candidates.sort_by_key(|&i| self.testability.cc(i, next_value));
                candidates
                    .into_iter()
                    .find_map(|i| self.backtrace(i, next_value, assign, good))
            }
            Node::TriBuf { enable, data } => match good.value(*enable).to_bool() {
                // An X enable means the output is X regardless of data;
                // controllability goes through the enable first.
                None => self.backtrace(*enable, true, assign, good),
                Some(true) => self.backtrace(*data, value, assign, good),
                Some(false) => None, // not driving; cannot produce a value
            },
            Node::Bus { drivers } => drivers
                .iter()
                .filter(|&&d| good.value(d).is_x())
                .find_map(|&d| self.backtrace(d, value, assign, good)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xhc_fault::{all_output_faults, fault_coverage, FullObservability};
    use xhc_logic::{samples, FlopInit, NetlistBuilder};
    use xhc_scan::ScanConfig;

    /// c17 wrapped with two capture flops, as in xhc-fault's tests.
    fn c17_harness_parts() -> (xhc_logic::Netlist, Vec<usize>) {
        use xhc_logic::GateKind;
        let mut b = NetlistBuilder::new();
        let ins: Vec<_> = (0..5).map(|_| b.input()).collect();
        let n10 = b.gate(GateKind::Nand, vec![ins[0], ins[2]]);
        let n11 = b.gate(GateKind::Nand, vec![ins[2], ins[3]]);
        let n16 = b.gate(GateKind::Nand, vec![ins[1], n11]);
        let n19 = b.gate(GateKind::Nand, vec![n11, ins[4]]);
        let n22 = b.gate(GateKind::Nand, vec![n10, n16]);
        let n23 = b.gate(GateKind::Nand, vec![n16, n19]);
        let f0 = b.flop(FlopInit::Zero);
        let f1 = b.flop(FlopInit::Zero);
        b.connect_flop_d(f0, n22);
        b.connect_flop_d(f1, n23);
        b.output(n22);
        b.output(n23);
        let nl = b.finish().unwrap();
        let flops = vec![nl.flop_index(f0).unwrap(), nl.flop_index(f1).unwrap()];
        (nl, flops)
    }

    #[test]
    fn podem_covers_all_c17_faults() {
        let (nl, flops) = c17_harness_parts();
        let harness = ScanHarness::new(&nl, ScanConfig::uniform(2, 1), flops).unwrap();
        let podem = Podem::new(&harness);
        let faults = all_output_faults(&nl);
        // Capture flops are fault sites too (skipped by all_output_faults);
        // every enumerated fault of c17 is testable.
        for fault in faults {
            let pattern = podem
                .generate(fault)
                .unwrap_or_else(|e| panic!("{fault} should be testable, got {e:?}"));
            // Verify by fault simulation.
            let report = fault_coverage(&harness, &[pattern], &[fault], &FullObservability);
            assert_eq!(report.detected, 1, "pattern must really detect {fault}");
        }
    }

    #[test]
    fn untestable_fault_is_proven() {
        // out = OR(a, NOT a) is constant 1 -> sa1 at the OR is untestable.
        let mut b = NetlistBuilder::new();
        let a = b.input();
        let na = b.not(a);
        let or = b.or2(a, na);
        let f = b.flop(FlopInit::Zero);
        b.connect_flop_d(f, or);
        b.output(or);
        let nl = b.finish().unwrap();
        let flops = vec![nl.flop_index(f).unwrap()];
        let harness = ScanHarness::new(&nl, ScanConfig::uniform(1, 1), flops).unwrap();
        let podem = Podem::new(&harness);
        assert_eq!(
            podem.generate(Fault::sa1(or)),
            Err(PodemFailure::Untestable)
        );
        // sa0 at the OR *is* testable (output flips to 0).
        assert!(podem.generate(Fault::sa0(or)).is_ok());
    }

    #[test]
    fn x_prone_circuit_faults_mostly_testable() {
        let (nl, scan_flops) = samples::x_prone_sequential();
        let harness = ScanHarness::new(&nl, ScanConfig::uniform(2, 2), scan_flops).unwrap();
        let podem = Podem::new(&harness);
        let faults = all_output_faults(&nl);
        let mut tested = 0;
        for fault in &faults {
            if let Ok(pattern) = podem.generate(*fault) {
                let report = fault_coverage(&harness, &[pattern], &[*fault], &FullObservability);
                assert_eq!(report.detected, 1, "PODEM pattern must detect {fault}");
                tested += 1;
            }
        }
        // The shadow flop and floating bus make some faults hard, but a
        // clear majority must be covered.
        assert!(
            tested * 2 > faults.len(),
            "only {tested}/{} testable",
            faults.len()
        );
    }

    #[test]
    fn structurally_unobservable_fault_is_pruned_fast() {
        // A fault whose only fanout feeds a primary output (no captured
        // flop): the X-path prune proves untestability without any
        // decision enumeration, so even a zero backtrack budget suffices
        // to return Untestable rather than Aborted.
        let mut b = NetlistBuilder::new();
        let a = b.input();
        let c = b.input();
        let dead_end = b.and2(a, c); // feeds only the PO below
        let captured = b.or2(a, c);
        let f = b.flop(FlopInit::Zero);
        b.connect_flop_d(f, captured);
        b.output(dead_end);
        let nl = b.finish().unwrap();
        let flops = vec![nl.flop_index(f).unwrap()];
        let harness = ScanHarness::new(&nl, ScanConfig::uniform(1, 1), flops).unwrap();
        let podem = Podem::new(&harness).with_max_backtracks(0);
        assert_eq!(
            podem.generate(Fault::sa0(dead_end)),
            Err(PodemFailure::Untestable)
        );
        // Faults on the captured cone remain testable.
        assert!(podem.generate(Fault::sa0(captured)).is_ok());
    }

    #[test]
    fn x_path_prune_preserves_verdicts() {
        // Same verdicts as the unpruned search on the X-prone circuit:
        // 19 testable, 7 untestable (established analytically).
        let (nl, scan_flops) = samples::x_prone_sequential();
        let harness = ScanHarness::new(&nl, ScanConfig::uniform(2, 2), scan_flops).unwrap();
        let podem = Podem::new(&harness);
        let faults = xhc_fault::all_output_faults(&nl);
        let testable = faults
            .iter()
            .filter(|&&f| podem.generate(f).is_ok())
            .count();
        assert_eq!(testable, 19);
    }

    #[test]
    fn backtrack_budget_aborts() {
        let (nl, flops) = c17_harness_parts();
        let harness = ScanHarness::new(&nl, ScanConfig::uniform(2, 1), flops).unwrap();
        let podem = Podem::new(&harness).with_max_backtracks(0);
        // With a zero budget anything needing a single backtrack aborts;
        // faults solvable greedily still succeed. Just ensure no panic and
        // a sane result either way.
        let faults = all_output_faults(&nl);
        for fault in faults {
            match podem.generate(fault) {
                Ok(p) => {
                    let r = fault_coverage(&harness, &[p], &[fault], &FullObservability);
                    assert_eq!(r.detected, 1);
                }
                Err(PodemFailure::Aborted) | Err(PodemFailure::Untestable) => {}
            }
        }
    }
}
