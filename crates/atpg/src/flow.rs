//! The complete test-generation flow: random patterns, fault dropping,
//! deterministic PODEM top-off.

use crate::podem::{Podem, PodemFailure};
use xhc_fault::{fault_coverage, Fault, FullObservability};
use xhc_logic::Trit;
use xhc_prng::XhcRng;
use xhc_scan::{ScanHarness, TestPattern};

/// Configuration for [`generate_tests`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AtpgConfig {
    /// Random patterns to try before deterministic generation.
    pub random_patterns: usize,
    /// PODEM backtrack budget per fault.
    pub max_backtracks: usize,
    /// Seed for random patterns and random fill.
    pub seed: u64,
}

impl Default for AtpgConfig {
    fn default() -> Self {
        AtpgConfig {
            random_patterns: 64,
            max_backtracks: 1000,
            seed: 0,
        }
    }
}

/// The output of the ATPG flow.
#[derive(Debug, Clone)]
pub struct AtpgResult {
    /// The generated pattern set (random keepers + deterministic).
    pub patterns: Vec<TestPattern>,
    /// Faults detected by the final pattern set.
    pub detected: usize,
    /// Faults proven untestable by PODEM.
    pub untestable: Vec<Fault>,
    /// Faults abandoned on backtrack budget.
    pub aborted: Vec<Fault>,
    /// Total faults targeted.
    pub total_faults: usize,
}

impl AtpgResult {
    /// Detected / total.
    pub fn coverage(&self) -> f64 {
        if self.total_faults == 0 {
            return 1.0;
        }
        self.detected as f64 / self.total_faults as f64
    }

    /// Detected / (total − untestable): the coverage of what is coverable.
    pub fn testable_coverage(&self) -> f64 {
        let testable = self.total_faults - self.untestable.len();
        if testable == 0 {
            return 1.0;
        }
        self.detected as f64 / testable as f64
    }
}

fn random_pattern(rng: &mut XhcRng, num_cells: usize, num_inputs: usize) -> TestPattern {
    TestPattern {
        scan_load: (0..num_cells)
            .map(|_| Trit::from_bool(rng.gen_bool(0.5)))
            .collect(),
        inputs: (0..num_inputs)
            .map(|_| Trit::from_bool(rng.gen_bool(0.5)))
            .collect(),
    }
}

fn random_fill(rng: &mut XhcRng, pattern: &TestPattern) -> TestPattern {
    let mut fill = |t: &Trit| {
        if t.is_x() {
            Trit::from_bool(rng.gen_bool(0.5))
        } else {
            *t
        }
    };
    TestPattern {
        scan_load: pattern.scan_load.iter().map(&mut fill).collect(),
        inputs: pattern.inputs.iter().map(&mut fill).collect(),
    }
}

/// Runs the standard two-phase ATPG flow against a fault list:
///
/// 1. **Random phase** — seeded random patterns, fault-simulated with
///    dropping; patterns that detect nothing new are discarded.
/// 2. **Deterministic phase** — PODEM targets each remaining fault; each
///    generated pattern is random-filled and fault-simulated against all
///    remaining faults (incidental detection drops them too).
///
/// Detection is scored at the captured scan cells with full observability
/// (compactor effects are applied afterwards by the X-handling pipeline).
pub fn generate_tests(
    harness: &ScanHarness<'_>,
    faults: &[Fault],
    config: AtpgConfig,
) -> AtpgResult {
    let mut rng = XhcRng::seed_from_u64(config.seed);
    let num_cells = harness.config().total_cells();
    let num_inputs = harness.netlist().num_inputs();

    let mut patterns: Vec<TestPattern> = Vec::new();
    let mut remaining: Vec<Fault> = faults.to_vec();
    let mut untestable = Vec::new();
    let mut aborted = Vec::new();

    // Phase 1: random patterns with fault dropping.
    for _ in 0..config.random_patterns {
        if remaining.is_empty() {
            break;
        }
        let pattern = random_pattern(&mut rng, num_cells, num_inputs);
        let before = remaining.len();
        let report = fault_coverage(
            harness,
            std::slice::from_ref(&pattern),
            &remaining,
            &FullObservability,
        );
        let survivors: Vec<Fault> = remaining
            .iter()
            .zip(&report.detected_by)
            .filter(|(_, d)| d.is_none())
            .map(|(f, _)| *f)
            .collect();
        if survivors.len() < before {
            patterns.push(pattern);
        }
        remaining = survivors;
    }

    // Phase 2: PODEM per remaining fault.
    let podem = Podem::new(harness).with_max_backtracks(config.max_backtracks);
    while let Some(fault) = remaining.first().copied() {
        match podem.generate(fault) {
            Ok(raw) => {
                let pattern = random_fill(&mut rng, &raw);
                let report = fault_coverage(
                    harness,
                    std::slice::from_ref(&pattern),
                    &remaining,
                    &FullObservability,
                );
                let survivors: Vec<Fault> = remaining
                    .iter()
                    .zip(&report.detected_by)
                    .filter(|(_, d)| d.is_none())
                    .map(|(f, _)| *f)
                    .collect();
                if survivors.len() < remaining.len() {
                    patterns.push(pattern);
                    remaining = survivors;
                } else {
                    // Random fill spoiled the (X-dependent) detection;
                    // keep the raw pattern, which is guaranteed to detect.
                    let report = fault_coverage(
                        harness,
                        std::slice::from_ref(&raw),
                        &remaining,
                        &FullObservability,
                    );
                    let survivors: Vec<Fault> = remaining
                        .iter()
                        .zip(&report.detected_by)
                        .filter(|(_, d)| d.is_none())
                        .map(|(f, _)| *f)
                        .collect();
                    patterns.push(raw);
                    // Guard against a pathological non-detecting pattern
                    // (should not happen: PODEM verified detection).
                    if survivors.len() == remaining.len() {
                        aborted.push(fault);
                        remaining.remove(0);
                    } else {
                        remaining = survivors;
                    }
                }
            }
            Err(PodemFailure::Untestable) => {
                untestable.push(fault);
                remaining.remove(0);
            }
            Err(PodemFailure::Aborted) => {
                aborted.push(fault);
                remaining.remove(0);
            }
        }
    }

    // Final scoring over the full fault list.
    let final_report = fault_coverage(harness, &patterns, faults, &FullObservability);
    AtpgResult {
        patterns,
        detected: final_report.detected,
        untestable,
        aborted,
        total_faults: faults.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xhc_fault::all_output_faults;
    use xhc_logic::samples;
    use xhc_scan::ScanConfig;

    #[test]
    fn flow_reaches_full_testable_coverage_on_x_prone_circuit() {
        let (nl, scan_flops) = samples::x_prone_sequential();
        let harness = ScanHarness::new(&nl, ScanConfig::uniform(2, 2), scan_flops).unwrap();
        let faults = all_output_faults(&nl);
        let result = generate_tests(&harness, &faults, AtpgConfig::default());
        assert!(result.aborted.is_empty(), "aborted: {:?}", result.aborted);
        assert!(
            (result.testable_coverage() - 1.0).abs() < 1e-9,
            "coverage {} with {} untestable",
            result.testable_coverage(),
            result.untestable.len()
        );
        assert!(!result.patterns.is_empty());
    }

    #[test]
    fn deterministic_per_seed() {
        let (nl, scan_flops) = samples::x_prone_sequential();
        let harness = ScanHarness::new(&nl, ScanConfig::uniform(2, 2), scan_flops).unwrap();
        let faults = all_output_faults(&nl);
        let a = generate_tests(&harness, &faults, AtpgConfig::default());
        let b = generate_tests(&harness, &faults, AtpgConfig::default());
        assert_eq!(a.patterns, b.patterns);
        assert_eq!(a.detected, b.detected);
    }

    #[test]
    fn random_only_phase_leaves_work_for_podem() {
        let (nl, scan_flops) = samples::x_prone_sequential();
        let harness = ScanHarness::new(&nl, ScanConfig::uniform(2, 2), scan_flops).unwrap();
        let faults = all_output_faults(&nl);
        let no_random = generate_tests(
            &harness,
            &faults,
            AtpgConfig {
                random_patterns: 0,
                ..AtpgConfig::default()
            },
        );
        assert!(no_random.testable_coverage() > 0.99);
    }

    #[test]
    fn empty_fault_list() {
        let (nl, scan_flops) = samples::x_prone_sequential();
        let harness = ScanHarness::new(&nl, ScanConfig::uniform(2, 2), scan_flops).unwrap();
        let result = generate_tests(&harness, &[], AtpgConfig::default());
        assert_eq!(result.coverage(), 1.0);
        assert!(result.patterns.is_empty());
    }
}
