//! Automatic test-pattern generation (ATPG) for stuck-at faults.
//!
//! The paper applies 3000 ATPG patterns from a commercial flow to its
//! industrial circuits; this crate is the from-scratch substitute: a
//! PODEM deterministic generator ([`Podem`]) over the scan-test
//! combinational view, plus the standard two-phase flow
//! ([`generate_tests`]) — seeded random patterns with fault dropping,
//! then PODEM top-off with random fill.
//!
//! Patterns produced here drive the end-to-end experiments: capture
//! through `xhc-scan`, X's from the circuit's uninitialized state and
//! tri-state buses, compaction and X-handling through `xhc-misr` /
//! `xhc-core`, and coverage scoring through `xhc-fault`.
//!
//! # Examples
//!
//! ```
//! use xhc_atpg::{generate_tests, AtpgConfig};
//! use xhc_fault::all_output_faults;
//! use xhc_logic::samples;
//! use xhc_scan::{ScanConfig, ScanHarness};
//!
//! let (netlist, scan_flops) = samples::x_prone_sequential();
//! let harness = ScanHarness::new(&netlist, ScanConfig::uniform(2, 2), scan_flops)?;
//! let faults = all_output_faults(&netlist);
//! let result = generate_tests(&harness, &faults, AtpgConfig::default());
//! assert!(result.testable_coverage() > 0.99);
//! # Ok::<(), xhc_scan::HarnessError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod flow;
mod podem;
pub mod scoap;

pub use flow::{generate_tests, AtpgConfig, AtpgResult};
pub use podem::{Podem, PodemFailure};
