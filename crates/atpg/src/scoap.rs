//! SCOAP-style testability measures (Goldstein's controllability /
//! observability analysis, adapted to the scan-test combinational view).
//!
//! * `CC0(n)` / `CC1(n)` — how hard it is to drive node `n` to 0 / 1 from
//!   the assignable inputs (primary inputs and scan cells); uncontrollable
//!   sources (uninitialized shadow flops) are infinite.
//! * `CO(n)` — how hard it is to propagate a value at `n` to a captured
//!   scan cell.
//!
//! These are heuristics, not bounds: PODEM uses them to *order* its
//! choices (easiest input first, most observable D-frontier gate first),
//! never to decide testability — correctness stays with the simulator.

use xhc_logic::{GateKind, Netlist, Node, NodeId, Trit};
use xhc_scan::ScanHarness;

/// "Effectively infinite" effort: uncontrollable / unobservable.
pub const INF: u32 = u32::MAX / 4;

/// Per-node testability measures for a scan-wrapped netlist.
#[derive(Debug, Clone)]
pub struct Testability {
    cc0: Vec<u32>,
    cc1: Vec<u32>,
    co: Vec<u32>,
}

impl Testability {
    /// Controllability to 0 of a node.
    pub fn cc0(&self, node: NodeId) -> u32 {
        self.cc0[node.index()]
    }

    /// Controllability to 1 of a node.
    pub fn cc1(&self, node: NodeId) -> u32 {
        self.cc1[node.index()]
    }

    /// Controllability to a given value.
    pub fn cc(&self, node: NodeId, value: bool) -> u32 {
        if value {
            self.cc1(node)
        } else {
            self.cc0(node)
        }
    }

    /// Observability of a node at the captured scan cells.
    pub fn co(&self, node: NodeId) -> u32 {
        self.co[node.index()]
    }

    /// Computes the measures for a harness (its mapping defines which
    /// flops are observable and controllable).
    pub fn compute(harness: &ScanHarness<'_>) -> Self {
        let netlist = harness.netlist();
        let n = netlist.num_nodes();
        let mut cc0 = vec![INF; n];
        let mut cc1 = vec![INF; n];

        // Which flops are scan cells (controllable + observable).
        let mut scan_flop_nodes = vec![false; n];
        let cfg = harness.config();
        for ci in 0..cfg.total_cells() {
            let flop = harness.flop_of(cfg.cell_at(ci));
            scan_flop_nodes[netlist.flops()[flop].index()] = true;
        }

        // Sources.
        for (id, node) in netlist.iter_nodes() {
            match node {
                Node::Input(_) => {
                    cc0[id.index()] = 1;
                    cc1[id.index()] = 1;
                }
                Node::Const(v) => match v {
                    Trit::Zero => cc0[id.index()] = 0,
                    Trit::One => cc1[id.index()] = 0,
                    Trit::X => {}
                },
                Node::Flop { .. } if scan_flop_nodes[id.index()] => {
                    cc0[id.index()] = 1;
                    cc1[id.index()] = 1;
                }
                // Shadow flops stay INF: their power-up X cannot be set.
                _ => {}
            }
        }

        // Forward pass in evaluation (topological) order.
        let order: Vec<NodeId> = eval_order(netlist);
        for &id in &order {
            let (c0, c1) = controllability(netlist, id, &cc0, &cc1);
            cc0[id.index()] = c0;
            cc1[id.index()] = c1;
        }

        // Backward pass for observability.
        let mut co = vec![INF; n];
        for (id, node) in netlist.iter_nodes() {
            if let Node::Flop { d: Some(d), .. } = node {
                if scan_flop_nodes[id.index()] {
                    co[d.index()] = 0;
                }
            }
        }
        for &id in order.iter().rev() {
            propagate_observability(netlist, id, &cc0, &cc1, &mut co);
        }

        Testability { cc0, cc1, co }
    }
}

fn eval_order(netlist: &Netlist) -> Vec<NodeId> {
    // The netlist's own evaluation order is private to xhc-logic; a local
    // Kahn pass over the combinational edges reproduces one. `ids[i]` is
    // the NodeId with raw index `i` (iter_nodes yields in index order).
    let n = netlist.num_nodes();
    let ids: Vec<NodeId> = netlist.iter_nodes().map(|(id, _)| id).collect();
    let mut indegree = vec![0usize; n];
    let mut fanout: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (id, node) in netlist.iter_nodes() {
        for src in comb_inputs(node) {
            indegree[id.index()] += 1;
            fanout[src.index()].push(id.index());
        }
    }
    let mut ready: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
    let mut order = Vec::new();
    while let Some(i) = ready.pop() {
        let id = ids[i];
        if matches!(
            netlist.node(id),
            Node::Gate { .. } | Node::TriBuf { .. } | Node::Bus { .. }
        ) {
            order.push(id);
        }
        for &f in &fanout[i] {
            indegree[f] -= 1;
            if indegree[f] == 0 {
                ready.push(f);
            }
        }
    }
    order
}

fn comb_inputs(node: &Node) -> Vec<NodeId> {
    match node {
        Node::Gate { inputs, .. } => inputs.clone(),
        Node::TriBuf { enable, data } => vec![*enable, *data],
        Node::Bus { drivers } => drivers.clone(),
        _ => Vec::new(),
    }
}

fn sat(a: u32, b: u32) -> u32 {
    a.saturating_add(b).min(INF)
}

fn controllability(netlist: &Netlist, id: NodeId, cc0: &[u32], cc1: &[u32]) -> (u32, u32) {
    let c0 = |n: NodeId| cc0[n.index()];
    let c1 = |n: NodeId| cc1[n.index()];
    match netlist.node(id) {
        Node::Gate { kind, inputs } => {
            let fold_and = || {
                let set1 = inputs.iter().fold(0u32, |acc, &i| sat(acc, c1(i)));
                let set0 = inputs.iter().map(|&i| c0(i)).min().unwrap_or(INF);
                (sat(set0, 1), sat(set1, 1))
            };
            let fold_or = || {
                let set0 = inputs.iter().fold(0u32, |acc, &i| sat(acc, c0(i)));
                let set1 = inputs.iter().map(|&i| c1(i)).min().unwrap_or(INF);
                (sat(set0, 1), sat(set1, 1))
            };
            let fold_xor = || {
                // Pairwise fold of the 2-input XOR rule.
                let (mut z, mut o) = (c0(inputs[0]), c1(inputs[0]));
                for &i in &inputs[1..] {
                    let nz = sat(z, c0(i)).min(sat(o, c1(i)));
                    let no = sat(z, c1(i)).min(sat(o, c0(i)));
                    z = nz;
                    o = no;
                }
                (sat(z, 1), sat(o, 1))
            };
            match kind {
                GateKind::And => fold_and(),
                GateKind::Nand => {
                    let (z, o) = fold_and();
                    (o, z)
                }
                GateKind::Or => fold_or(),
                GateKind::Nor => {
                    let (z, o) = fold_or();
                    (o, z)
                }
                GateKind::Xor => fold_xor(),
                GateKind::Xnor => {
                    let (z, o) = fold_xor();
                    (o, z)
                }
                GateKind::Not => (sat(c1(inputs[0]), 1), sat(c0(inputs[0]), 1)),
                GateKind::Buf => (sat(c0(inputs[0]), 1), sat(c1(inputs[0]), 1)),
                GateKind::Mux => {
                    let (s, a, b) = (inputs[0], inputs[1], inputs[2]);
                    let z = sat(c0(s), c0(a)).min(sat(c1(s), c0(b)));
                    let o = sat(c0(s), c1(a)).min(sat(c1(s), c1(b)));
                    (sat(z, 1), sat(o, 1))
                }
            }
        }
        Node::TriBuf { enable, data } => (
            sat(sat(c1(*enable), c0(*data)), 1),
            sat(sat(c1(*enable), c1(*data)), 1),
        ),
        Node::Bus { drivers } => {
            // Cheapest single driver (ignoring the cost of silencing the
            // others — a deliberate optimistic approximation).
            let z = drivers.iter().map(|&d| cc0[d.index()]).min().unwrap_or(INF);
            let o = drivers.iter().map(|&d| cc1[d.index()]).min().unwrap_or(INF);
            (sat(z, 1), sat(o, 1))
        }
        // Sources keep their seeded values.
        _ => (cc0[id.index()], cc1[id.index()]),
    }
}

fn propagate_observability(
    netlist: &Netlist,
    id: NodeId,
    cc0: &[u32],
    cc1: &[u32],
    co: &mut [u32],
) {
    let out_co = co[id.index()];
    if out_co >= INF {
        return;
    }
    let update = |co: &mut [u32], n: NodeId, v: u32| {
        let slot = &mut co[n.index()];
        *slot = (*slot).min(v.min(INF));
    };
    match netlist.node(id) {
        Node::Gate { kind, inputs } => {
            for (pos, &i) in inputs.iter().enumerate() {
                let side_cost: u32 = match kind {
                    GateKind::And | GateKind::Nand => inputs
                        .iter()
                        .enumerate()
                        .filter(|&(j, _)| j != pos)
                        .fold(0u32, |acc, (_, &o)| sat(acc, cc1[o.index()])),
                    GateKind::Or | GateKind::Nor => inputs
                        .iter()
                        .enumerate()
                        .filter(|&(j, _)| j != pos)
                        .fold(0u32, |acc, (_, &o)| sat(acc, cc0[o.index()])),
                    GateKind::Xor | GateKind::Xnor => inputs
                        .iter()
                        .enumerate()
                        .filter(|&(j, _)| j != pos)
                        .fold(0u32, |acc, (_, &o)| {
                            sat(acc, cc0[o.index()].min(cc1[o.index()]))
                        }),
                    GateKind::Not | GateKind::Buf => 0,
                    GateKind::Mux => {
                        if pos == 0 {
                            // Observing the select needs the data inputs
                            // to differ; approximate with their cheapest
                            // opposite settings.
                            sat(
                                cc0[inputs[1].index()].min(cc1[inputs[1].index()]),
                                cc0[inputs[2].index()].min(cc1[inputs[2].index()]),
                            )
                        } else if pos == 1 {
                            cc0[inputs[0].index()]
                        } else {
                            cc1[inputs[0].index()]
                        }
                    }
                };
                update(co, i, sat(sat(out_co, side_cost), 1));
            }
        }
        Node::TriBuf { enable, data } => {
            update(co, *data, sat(sat(out_co, cc1[enable.index()]), 1));
            update(
                co,
                *enable,
                sat(sat(out_co, cc0[data.index()].min(cc1[data.index()])), 1),
            );
        }
        Node::Bus { drivers } => {
            for &d in drivers {
                update(co, d, sat(out_co, 1));
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xhc_logic::{FlopInit, NetlistBuilder};
    use xhc_scan::ScanConfig;

    fn harness_for(build: impl Fn(&mut NetlistBuilder) -> Vec<NodeId>) -> (Netlist, Vec<usize>) {
        let mut b = NetlistBuilder::new();
        let outs = build(&mut b);
        let mut flops = Vec::new();
        for &o in &outs {
            let f = b.flop(FlopInit::Zero);
            b.connect_flop_d(f, o);
            b.output(o);
            flops.push(f);
        }
        let nl = b.finish().unwrap();
        let idx = flops.iter().map(|&f| nl.flop_index(f).unwrap()).collect();
        (nl, idx)
    }

    #[test]
    fn and_controllability_asymmetry() {
        // AND: setting 1 needs all inputs, setting 0 needs one.
        let (nl, flops) = harness_for(|b| {
            let a = b.input();
            let c = b.input();
            let d = b.input();
            vec![b.gate(GateKind::And, vec![a, c, d])]
        });
        let harness = ScanHarness::new(&nl, ScanConfig::uniform(1, 1), flops).unwrap();
        let t = Testability::compute(&harness);
        let g = nl.outputs()[0];
        assert_eq!(t.cc1(g), 4); // 1+1+1 inputs + 1 level
        assert_eq!(t.cc0(g), 2); // one input + 1 level
    }

    #[test]
    fn depth_increases_controllability() {
        let (nl, flops) = harness_for(|b| {
            let a = b.input();
            let c = b.input();
            let mut g = b.and2(a, c);
            for _ in 0..5 {
                g = b.and2(g, c);
            }
            vec![g]
        });
        let harness = ScanHarness::new(&nl, ScanConfig::uniform(1, 1), flops).unwrap();
        let t = Testability::compute(&harness);
        let deep = nl.outputs()[0];
        assert!(t.cc1(deep) > 6);
    }

    #[test]
    fn shadow_flops_are_uncontrollable() {
        let mut b = NetlistBuilder::new();
        let a = b.input();
        let shadow = b.flop(FlopInit::Unknown);
        b.connect_flop_d(shadow, a);
        let g = b.and2(shadow, a);
        let f = b.flop(FlopInit::Zero);
        b.connect_flop_d(f, g);
        b.output(g);
        let nl = b.finish().unwrap();
        let flops = vec![nl.flop_index(f).unwrap()];
        let harness = ScanHarness::new(&nl, ScanConfig::uniform(1, 1), flops).unwrap();
        let t = Testability::compute(&harness);
        // g = shadow & a: cc1 requires the shadow -> INF.
        assert!(t.cc1(g) >= INF);
        // cc0 via a = 0 stays cheap.
        assert!(t.cc0(g) < 10);
    }

    #[test]
    fn observability_decreases_toward_capture() {
        let (nl, flops) = harness_for(|b| {
            let a = b.input();
            let c = b.input();
            let g1 = b.and2(a, c);
            let g2 = b.or2(g1, a);
            vec![g2]
        });
        let harness = ScanHarness::new(&nl, ScanConfig::uniform(1, 1), flops).unwrap();
        let t = Testability::compute(&harness);
        // The captured node has CO 0; its fan-ins more.
        let g2 = nl.outputs()[0];
        assert_eq!(t.co(g2), 0);
        for (id, node) in nl.iter_nodes() {
            if matches!(node, Node::Input(_)) {
                assert!(t.co(id) > 0);
                assert!(t.co(id) < INF, "inputs observable through the cone");
            }
        }
    }

    #[test]
    fn unobserved_cone_is_unobservable() {
        // A gate feeding only a primary output (no captured flop).
        let mut b = NetlistBuilder::new();
        let a = b.input();
        let c = b.input();
        let dead = b.and2(a, c);
        let live = b.or2(a, c);
        let f = b.flop(FlopInit::Zero);
        b.connect_flop_d(f, live);
        b.output(dead);
        let nl = b.finish().unwrap();
        let flops = vec![nl.flop_index(f).unwrap()];
        let harness = ScanHarness::new(&nl, ScanConfig::uniform(1, 1), flops).unwrap();
        let t = Testability::compute(&harness);
        assert!(t.co(dead) >= INF);
        assert_eq!(t.co(live), 0);
    }
}
