//! End-to-end scan test: a generated circuit with real X sources, ATPG'd
//! patterns, captured responses, and the full hybrid X-handling pipeline.
//!
//! This is the flow the paper's introduction motivates: responses corrupted
//! by uninitialized registers and tri-state buses, compacted into a MISR,
//! with X's removed by shared mask words plus X-canceling — and fault
//! coverage scored before and after to show nothing is lost.
//!
//! Run with: `cargo run --example end_to_end_scan_test`

#![deny(deprecated)]

use xhybrid::atpg::{generate_tests, AtpgConfig};
use xhybrid::core::{apply_partition_masks, CellSelection, PartitionEngine, PlanOptions};
use xhybrid::fault::{all_output_faults, fault_coverage, FullObservability};
use xhybrid::logic::generate::CircuitSpec;
use xhybrid::misr::{CancelSession, Taps, XCancelConfig};
use xhybrid::scan::{ScanConfig, ScanHarness};

fn main() {
    // 1. A random circuit with all three X sources the paper lists.
    let spec = CircuitSpec {
        num_inputs: 10,
        num_gates: 150,
        num_scan_flops: 24,
        num_shadow_flops: 3,
        num_buses: 2,
        seed: 2016,
        ..CircuitSpec::default()
    };
    let circuit = spec.generate();
    println!(
        "circuit: {} nodes, {} scan flops, {} shadow (uninitialized) flops",
        circuit.netlist.num_nodes(),
        circuit.scan_flops.len(),
        circuit.shadow_flops.len()
    );

    // 2. Scan configuration: 4 chains of 6 cells.
    let scan_cfg = ScanConfig::uniform(4, 6);
    let harness = ScanHarness::new(&circuit.netlist, scan_cfg, circuit.scan_flops.clone())
        .expect("scan mapping is valid");

    // 3. ATPG.
    let faults = all_output_faults(&circuit.netlist);
    let atpg = generate_tests(&harness, &faults, AtpgConfig::default());
    println!(
        "ATPG: {} patterns, {}/{} faults detected ({:.1}% of testable), {} untestable, {} aborted",
        atpg.patterns.len(),
        atpg.detected,
        atpg.total_faults,
        100.0 * atpg.testable_coverage(),
        atpg.untestable.len(),
        atpg.aborted.len()
    );

    // 4. Capture responses; X's appear wherever the X sources reach state.
    let responses = harness.run(&atpg.patterns);
    let xmap = responses.to_xmap();
    println!(
        "responses: {} patterns x {} cells, {} X's ({:.2}% density)",
        responses.num_patterns(),
        responses.config().total_cells(),
        xmap.total_x(),
        100.0 * xmap.x_density()
    );

    // 5. The proposed hybrid: partition, mask, cancel.
    let cancel = XCancelConfig::new(12, 3);
    let outcome = PartitionEngine::with_options(
        cancel,
        PlanOptions {
            policy: CellSelection::First,
            ..PlanOptions::default()
        },
    )
    .run(&xmap);
    println!(
        "partitioning: {} partitions, {} X's masked, {} leaked, {:.1} control bits \
         (vs {:.1} canceling-only, {} masking-only)",
        outcome.partitions.len(),
        outcome.masked_x(),
        outcome.leaked_x(),
        outcome.cost.total(),
        cancel.control_bits(xmap.total_x()),
        responses.config().mask_word_bits() * responses.num_patterns(),
    );

    // 6. Operational check: gate the responses, run the time-multiplexed
    //    X-canceling session on what is left.
    let masked = apply_partition_masks(&responses, &outcome);
    assert_eq!(masked.total_x(), outcome.leaked_x());
    let session = CancelSession::new(
        responses.config().clone(),
        cancel,
        Taps::default_for(cancel.m()),
    );
    let with_masking = session.run(&masked);
    let without_masking = session.run(&responses);
    println!(
        "X-canceling session: {} halts with masking vs {} without (paper: masking cuts halts -> test time)",
        with_masking.halts, without_masking.halts
    );

    // 7. Fault coverage is preserved: masked cells were all-X, so scoring
    //    detection on masked responses equals scoring on raw responses.
    let raw_cov = fault_coverage(&harness, &atpg.patterns, &faults, &FullObservability);
    let masked_cov = fault_coverage(&harness, &atpg.patterns, &faults, &|p: usize, c: usize| {
        let part = outcome
            .partitions
            .iter()
            .position(|s| s.contains(p))
            .expect("every pattern is in a partition");
        !outcome.masks[part].masks(c)
    });
    println!(
        "fault coverage: {:.2}% raw scan-out vs {:.2}% with hybrid masking (must match)",
        100.0 * raw_cov.coverage(),
        100.0 * masked_cov.coverage()
    );
    assert_eq!(raw_cov.detected, masked_cov.detected);
    println!("OK: no fault coverage lost, exactly as the paper argues.");
}
