//! A Table-1-style evaluation row on a synthetic industrial X profile.
//!
//! Uses a scaled-down CKT-B-shaped workload by default so the example runs
//! in seconds even unoptimized; pass `--full` to evaluate the actual
//! CKT-A/B/C profiles (recommended with `--release`; the dedicated bench
//! binary `table1` in `crates/bench` prints the whole table).
//!
//! Run with: `cargo run --release --example industrial_profile [-- --full]`

#![deny(deprecated)]

use xhybrid::core::{evaluate_hybrid, inter_correlation_stats, CellSelection};
use xhybrid::misr::XCancelConfig;
use xhybrid::workload::WorkloadSpec;

fn evaluate(spec: &WorkloadSpec) {
    println!("== {} ==", spec.name);
    let xmap = spec.generate();
    let stats = inter_correlation_stats(&xmap);
    println!(
        "{} cells / {} chains / {} patterns; {} X's ({:.3}% density), {} X-capturing cells",
        spec.total_cells,
        spec.num_chains,
        spec.num_patterns,
        stats.total_x,
        100.0 * xmap.x_density(),
        stats.x_cells
    );
    println!(
        "inter-correlation: largest identical-pattern-set group = {} cells; \
         90% of X's in {:.1}% of cells",
        stats.largest_identical_group,
        100.0 * stats.cells_for_90pct
    );

    let report = evaluate_hybrid(&xmap, XCancelConfig::paper_default(), CellSelection::First);
    println!(
        "control bits: masking-only {:.2}M | canceling-only {:.2}M | proposed {:.2}M",
        report.masking_only_bits as f64 / 1e6,
        report.canceling_only_bits / 1e6,
        report.proposed_bits / 1e6
    );
    println!(
        "improvement: {:.2}x over masking-only, {:.2}x over canceling-only \
         ({} partitions, {:.1}% of X's masked)",
        report.impv_over_masking,
        report.impv_over_canceling,
        report.outcome.partitions.len(),
        100.0 * report.outcome.masked_x() as f64 / report.total_x.max(1) as f64
    );
    println!(
        "normalized test time: {:.3} -> {:.3} ({:.2}x)\n",
        report.time_canceling_only, report.time_proposed, report.time_impv
    );
}

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    if full {
        for spec in [
            WorkloadSpec::ckt_a(),
            WorkloadSpec::ckt_b(),
            WorkloadSpec::ckt_c(),
        ] {
            evaluate(&spec);
        }
    } else {
        // A 1/15-scale CKT-B: same density and correlation structure.
        let spec = WorkloadSpec {
            name: "CKT-B (1/15 scale)",
            total_cells: 2405,
            num_chains: 5,
            num_patterns: 600,
            ..WorkloadSpec::ckt_b()
        };
        evaluate(&spec);
        println!("(pass --full for the real CKT-A/B/C profiles)");
    }
}
