//! Quickstart: the paper's worked example (Figs. 4–6) end to end.
//!
//! Builds the 8-pattern, 5-chain × 3-cell X map of Fig. 4, runs the
//! pattern-partitioning engine, and prints the partitions, the shared mask
//! words and the control-bit accounting — reproducing every number in the
//! paper's §4.
//!
//! Run with: `cargo run --example quickstart`

#![deny(deprecated)]

use xhybrid::core::{evaluate_hybrid, CellSelection};
use xhybrid::misr::XCancelConfig;
use xhybrid::scan::{CellId, ScanConfig, XMap, XMapBuilder};

fn fig4_xmap() -> XMap {
    let cfg = ScanConfig::uniform(5, 3);
    let mut b = XMapBuilder::new(cfg, 8);
    // Three inter-correlated cells with 4 X's under the same patterns.
    for p in [0, 3, 4, 5] {
        b.add_x(CellId::new(0, 0), p).unwrap();
        b.add_x(CellId::new(1, 0), p).unwrap();
        b.add_x(CellId::new(2, 0), p).unwrap();
    }
    for p in [0, 4] {
        b.add_x(CellId::new(1, 2), p).unwrap();
    }
    for p in [0, 1, 2, 3, 4, 6, 7] {
        b.add_x(CellId::new(3, 2), p).unwrap();
    }
    for p in [0, 1, 3, 4, 6, 7] {
        b.add_x(CellId::new(4, 1), p).unwrap();
    }
    b.add_x(CellId::new(4, 2), 5).unwrap();
    b.finish()
}

fn main() {
    let xmap = fig4_xmap();
    println!("== Fig. 4: X-value correlation analysis input ==");
    println!(
        "{} scan cells ({} chains x {} cells), {} patterns, {} X's ({:.1}% density)",
        xmap.config().total_cells(),
        xmap.config().num_chains(),
        xmap.config().max_chain_len(),
        xmap.num_patterns(),
        xmap.total_x(),
        100.0 * xmap.x_density()
    );
    for (cell, xs) in xmap.iter() {
        let pats: Vec<String> = xs.iter().map(|p| format!("P{}", p + 1)).collect();
        println!("  {cell}: {} X's under {}", xs.card(), pats.join(", "));
    }

    println!("\n== Figs. 5-6: partitioning with an (m=10, q=2) X-canceling MISR ==");
    let report = evaluate_hybrid(&xmap, XCancelConfig::new(10, 2), CellSelection::First);
    let outcome = &report.outcome;
    println!(
        "initial (1 partition): {:.1} control bits",
        outcome.initial_cost.total()
    );
    for r in &outcome.rounds {
        println!(
            "round {}: split on cell #{} (class: {} cells with {} X's) -> {:.1} bits",
            r.round,
            r.pivot_cell,
            r.class_size,
            r.class_count,
            r.cost_after.total()
        );
    }
    for (i, (part, mask)) in outcome.partitions.iter().zip(&outcome.masks).enumerate() {
        let pats: Vec<String> = part.iter().map(|p| format!("P{}", p + 1)).collect();
        println!(
            "partition {}: {{{}}} masks {} cell(s)",
            i + 1,
            pats.join(", "),
            mask.count()
        );
    }
    println!(
        "masked {} / {} X's; {} leak into the X-canceling MISR",
        outcome.masked_x(),
        report.total_x,
        outcome.leaked_x()
    );

    println!("\n== Control-bit comparison (the paper's accounting) ==");
    println!(
        "X-masking only [5]     : {:>6} bits (L*C*P = 3*5*8)",
        report.masking_only_bits
    );
    println!(
        "X-canceling only [12]  : {:>6.1} bits (m*q*X/(m-q))",
        report.canceling_only_bits
    );
    println!(
        "proposed hybrid        : {:>6.1} bits -> {} (rounded up, as the paper reports)",
        report.proposed_bits,
        outcome.cost.total_ceil()
    );
    println!(
        "improvement            : {:.2}x over [5], {:.2}x over [12]",
        report.impv_over_masking, report.impv_over_canceling
    );
    println!(
        "normalized test time   : {:.3} (canceling only) -> {:.3} (hybrid), {:.2}x better",
        report.time_canceling_only, report.time_proposed, report.time_impv
    );

    // The paper's alternate configuration: m=10, q=1 stops after round 1.
    println!("\n== Same example with (m=10, q=1): the cost function stops earlier ==");
    let report_q1 = evaluate_hybrid(&xmap, XCancelConfig::new(10, 1), CellSelection::First);
    println!(
        "{} partitions, {} total bits (paper: 2 partitions, 44 bits)",
        report_q1.outcome.partitions.len(),
        report_q1.outcome.cost.total_ceil()
    );
}
