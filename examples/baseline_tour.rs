//! A guided tour of every X-handling scheme in the paper's design space,
//! evaluated on one workload: what each costs, what each sacrifices, and
//! where the proposed hybrid sits.
//!
//! Run with: `cargo run --release --example baseline_tour`

#![deny(deprecated)]

use xhybrid::core::baselines::{
    canceling_only_bits, masking_only_bits, superset_canceling, SupersetConfig,
};
use xhybrid::core::{
    evaluate_hybrid, toggle_masking, CellSelection, PartitionEngine, PlanOptions, SplitStrategy,
    TogglePolicy,
};
use xhybrid::misr::{shadow_cancel_report, XCancelConfig};
use xhybrid::workload::WorkloadSpec;

fn main() {
    let spec = WorkloadSpec {
        name: "CKT-B (1/15 scale)",
        total_cells: 2405,
        num_chains: 5,
        num_patterns: 600,
        ..WorkloadSpec::ckt_b()
    };
    let xmap = spec.generate();
    let cancel = XCancelConfig::paper_default();
    println!(
        "workload: {} — {} cells, {} patterns, {} X's ({:.2}%)\n",
        spec.name,
        spec.total_cells,
        spec.num_patterns,
        xmap.total_x(),
        100.0 * xmap.x_density()
    );
    println!(
        "{:<44} {:>12} {:>10} {:>12}",
        "scheme", "ctrl bits", "time", "sacrifice"
    );
    let row = |name: &str, bits: f64, time: String, sacrifice: String| {
        println!("{name:<44} {bits:>12.0} {time:>10} {sacrifice:>12}");
    };

    // [5] conventional per-pattern masking: cheap time, huge data.
    row(
        "X-masking only [5]",
        masking_only_bits(xmap.config(), xmap.num_patterns()) as f64,
        "1.000".into(),
        "-".into(),
    );

    // [12] X-canceling MISR only.
    let t12 = cancel.normalized_test_time(xmap.config().num_chains(), xmap.x_density());
    row(
        "X-canceling MISR only [12]",
        canceling_only_bits(cancel, xmap.total_x()),
        format!("{t12:.3}"),
        "-".into(),
    );

    // [11] shadow-register variant: no time cost, needs extra channels.
    let shadow = shadow_cancel_report(xmap.config(), xmap.num_patterns(), xmap.total_x(), cancel);
    row(
        "shadow-register X-canceling [11]",
        shadow.control_bits,
        "1.000".into(),
        format!("+{}ch", shadow.extra_channels),
    );

    // [17,18] superset-style reuse.
    let sup = superset_canceling(
        &xmap,
        SupersetConfig {
            cancel,
            merge_slack: 0.25,
        },
    );
    row(
        "superset-style X-canceling [17,18]",
        sup.control_bits(),
        "~".into(),
        format!("{} obs", sup.lost_observability),
    );

    // [15,16] toggle masking.
    for (name, policy) in [
        (
            "toggle masking [15,16], no-loss",
            TogglePolicy::Conservative,
        ),
        ("toggle masking [15,16], greedy", TogglePolicy::Aggressive),
    ] {
        let t = toggle_masking(&xmap, cancel, policy);
        row(
            name,
            t.total(),
            "~".into(),
            if t.lost_observability == 0 {
                "-".into()
            } else {
                format!("{} obs", t.lost_observability)
            },
        );
    }

    // The paper's hybrid, both split strategies.
    let hybrid = evaluate_hybrid(&xmap, cancel, CellSelection::First);
    row(
        "proposed hybrid (paper, LargestClass)",
        hybrid.proposed_bits,
        format!("{:.3}", hybrid.time_proposed),
        "-".into(),
    );
    let best = PartitionEngine::with_options(
        cancel,
        PlanOptions {
            strategy: SplitStrategy::BestCost,
            ..PlanOptions::default()
        },
    )
    .run(&xmap);
    row(
        "proposed hybrid + BestCost extension",
        best.cost.total(),
        "~".into(),
        "-".into(),
    );

    println!("\nthe schemes marked '-' under sacrifice preserve every observable value and");
    println!("need no fault-simulation loops; 'N obs' = non-X response bits given up;");
    println!("'+Nch' = extra tester channels (the paper's reason to exclude [11]).");
}
