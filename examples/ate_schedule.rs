//! Cycle-accurate ATE scheduling for the hybrid architecture.
//!
//! The paper reports test time through the closed-form model of \[11\]
//! (`1 + n·x·q/(m−q)`); this example builds the explicit cycle schedule —
//! shifting, captures, partition mask reloads, X-free extraction halts —
//! shows the closed form emerging from it, and demonstrates why patterns
//! should be applied partition-contiguously (one mask load per partition
//! instead of one per partition *switch*).
//!
//! Run with: `cargo run --release --example ate_schedule`

#![deny(deprecated)]

use xhybrid::core::{
    mask_switches, pattern_order, schedule_hybrid, PartitionEngine, ScheduleOptions,
};
use xhybrid::misr::XCancelConfig;
use xhybrid::scan::AteConfig;
use xhybrid::workload::WorkloadSpec;

fn main() {
    let spec = WorkloadSpec {
        name: "CKT-B (1/15 scale)",
        total_cells: 2405,
        num_chains: 5,
        num_patterns: 600,
        ..WorkloadSpec::ckt_b()
    };
    let xmap = spec.generate();
    let cancel = XCancelConfig::paper_default();
    let outcome = PartitionEngine::new(cancel).run(&xmap);
    println!(
        "workload {}: {} X's, {} partitions, {} leaked to the MISR",
        spec.name,
        xmap.total_x(),
        outcome.partitions.len(),
        outcome.leaked_x()
    );

    let ate = AteConfig::new(32);
    let overlapped = schedule_hybrid(
        xmap.config(),
        xmap.num_patterns(),
        &outcome,
        cancel,
        ate,
        ScheduleOptions::default(),
    );
    let serialized = schedule_hybrid(
        xmap.config(),
        xmap.num_patterns(),
        &outcome,
        cancel,
        ate,
        ScheduleOptions {
            overlap_mask_reload: false,
            overlap_select_transfer: false,
        },
    );

    println!("\n== cycle schedule (control data overlapped with shifting, the paper's model) ==");
    print_schedule(&overlapped);
    println!("\n== cycle schedule (control data serialized — a pessimistic ATE) ==");
    print_schedule(&serialized);

    // The closed form the paper uses.
    let residual_density =
        outcome.leaked_x() as f64 / (xmap.config().total_cells() * xmap.num_patterns()) as f64;
    let closed_form = cancel.normalized_test_time(xmap.config().num_chains(), residual_density);
    println!(
        "\nclosed-form normalized time (paper §5 formula): {closed_form:.4}  vs schedule: {:.4}",
        overlapped.normalized()
    );

    // Pattern ordering matters for mask loads.
    let contiguous = pattern_order(&outcome);
    let naive: Vec<usize> = (0..xmap.num_patterns()).collect();
    println!(
        "\nmask loads: {} partition-contiguous vs {} in naive ascending order",
        mask_switches(&contiguous, &outcome),
        mask_switches(&naive, &outcome)
    );
}

fn print_schedule(s: &xhybrid::core::TestSchedule) {
    println!("  shift           : {:>9} cycles", s.shift_cycles);
    println!("  capture         : {:>9} cycles", s.capture_cycles);
    println!(
        "  mask reload     : {:>9} cycles ({} loads)",
        s.mask_reload_cycles, s.mask_loads
    );
    println!(
        "  halts/extraction: {:>9} cycles ({} halts)",
        s.extraction_cycles + s.select_transfer_cycles,
        s.halts
    );
    println!(
        "  total           : {:>9} cycles  (normalized {:.4})",
        s.total_cycles(),
        s.normalized()
    );
}
