//! The X-canceling MISR machinery of the paper's Figs. 2–3, step by step.
//!
//! Symbolically simulates the unload of a captured pattern into a 6-bit
//! MISR, prints each MISR bit's linear equation over scan-cell symbols,
//! builds the X-dependency matrix, Gaussian-eliminates it and shows the
//! X-free combinations and their (X-independent) observed values.
//!
//! Run with: `cargo run --example symbolic_misr`

#![deny(deprecated)]

use xhybrid::bits::gauss;
use xhybrid::logic::Trit;
use xhybrid::misr::{pattern_signature_rows, x_dependency_matrix, Taps, XCancelingMisr};
use xhybrid::scan::ScanConfig;

fn main() {
    // Fig. 2's shape: 6 chains x 3 cells, 18 captured values.
    let scan = ScanConfig::uniform(6, 3);
    let m = 6;
    let taps = Taps::default_for(m);

    println!("== Symbolic simulation (cf. paper Fig. 2) ==");
    let rows = pattern_signature_rows(&scan, m, taps.clone());
    for (i, row) in rows.iter().enumerate() {
        let syms: Vec<String> = row.iter_ones().map(|s| format!("c{s}")).collect();
        println!("M{} = {}", i + 1, syms.join(" ^ "));
    }

    // A captured response: 4 X's among 18 values (like the figure).
    let mut response = vec![Trit::Zero; 18];
    for (i, v) in response.iter_mut().enumerate() {
        *v = Trit::from_bool(i % 3 == 0);
    }
    for x_cell in [1, 6, 11, 16] {
        response[x_cell] = Trit::X;
    }
    let x_cells: Vec<usize> = vec![1, 6, 11, 16];

    println!("\n== X-dependency matrix and Gaussian elimination (cf. Fig. 3) ==");
    let dep = x_dependency_matrix(&rows, &x_cells);
    for r in 0..dep.num_rows() {
        let bits: String = (0..dep.num_cols())
            .map(|c| if dep.get(r, c) { '1' } else { '0' })
            .collect();
        println!("M{}: {bits}", r + 1);
    }
    let combos = gauss::x_free_combinations(&dep);
    println!(
        "rank {} over {} rows -> {} X-free combination(s)",
        dep.rank(),
        dep.num_rows(),
        combos.len()
    );

    let xc = XCancelingMisr::new(scan, m, taps);
    let outcome = xc.cancel_pattern(&response);
    for (ci, combo) in outcome.combinations.iter().enumerate() {
        let terms: Vec<String> = combo.iter_ones().map(|b| format!("M{}", b + 1)).collect();
        println!(
            "X-free signature {}: {} = {}",
            ci + 1,
            terms.join(" ^ "),
            u8::from(outcome.canceled_values.get(ci))
        );
    }
    println!(
        "control bits for this pattern: {} ({} select bits per combination)",
        outcome.control_bits, m
    );

    // Demonstrate X-independence: flip the X's, values stay put.
    println!("\n== The canceled values do not depend on the X's ==");
    for assignment in 0..2 {
        let mut concrete = response.clone();
        for &c in &x_cells {
            concrete[c] = Trit::from_bool(assignment == 1);
        }
        let concrete_outcome = xc.cancel_pattern(&concrete);
        // With no X's, all m rows are X-free; project onto our combos by
        // re-evaluating (see `known_part_values` for the primitive).
        let known = xhybrid::misr::known_part_values(xc.rows(), |s| concrete[s].to_bool());
        for (ci, combo) in outcome.combinations.iter().enumerate() {
            let mut acc = false;
            for bit in combo.iter_ones() {
                acc ^= known.get(bit);
            }
            assert_eq!(acc, outcome.canceled_values.get(ci));
        }
        let _ = concrete_outcome;
        println!("  all X's = {assignment}: canceled signatures unchanged ✓");
    }
}
