#!/usr/bin/env bash
# End-to-end smoke test of the planning daemon: start `xhybrid serve` on
# a loopback socket, submit the demo workload twice through `xhybrid
# fetch`, assert the second submission is a cache hit, and scrape
# /metrics to confirm the daemon counted exactly one miss.
#
# Usage: scripts/serve_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

work="$(mktemp -d "${TMPDIR:-/tmp}/xhc-serve-smoke.XXXXXX")"
daemon_pid=""
cleanup() {
  [[ -n "$daemon_pid" ]] && kill "$daemon_pid" 2>/dev/null || true
  rm -rf "$work"
}
trap cleanup EXIT

cargo build -q --release --bin xhybrid
xhybrid=target/release/xhybrid

"$xhybrid" gen --profile demo --out "$work/demo.xmap"

"$xhybrid" serve --addr 127.0.0.1:0 --store "$work/store" > "$work/serve.log" &
daemon_pid=$!
# The daemon prints `listening on ADDR` once bound.
for _ in $(seq 1 100); do
  addr="$(sed -n 's/^listening on //p' "$work/serve.log")"
  [[ -n "$addr" ]] && break
  sleep 0.1
done
[[ -n "${addr:-}" ]] || { echo "daemon never bound"; cat "$work/serve.log"; exit 1; }
echo "daemon up on $addr"

"$xhybrid" fetch --addr "$addr" "$work/demo.xmap" --m 16 --q 3 | tee "$work/first.txt"
grep -q 'cache            : miss' "$work/first.txt"

"$xhybrid" fetch --addr "$addr" "$work/demo.xmap" --m 16 --q 3 | tee "$work/second.txt"
grep -q 'cache            : hit' "$work/second.txt"

# Both submissions must agree on the content hash.
hash1="$(sed -n 's/^plan hash.*: //p' "$work/first.txt")"
hash2="$(sed -n 's/^plan hash.*: //p' "$work/second.txt")"
[[ -n "$hash1" && "$hash1" == "$hash2" ]] || { echo "hash mismatch: '$hash1' vs '$hash2'"; exit 1; }

# The daemon's own counters tell the same story: one miss, one hit.
metrics="$(exec 3<>"/dev/tcp/${addr%:*}/${addr##*:}"; \
  printf 'GET /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n' >&3; cat <&3)"
echo "$metrics" | grep -q '^xhc_cache_misses_total 1$' || { echo "bad miss count"; echo "$metrics"; exit 1; }
echo "$metrics" | grep -q '^xhc_cache_hits_total 1$' || { echo "bad hit count"; echo "$metrics"; exit 1; }

echo "serve smoke OK: one miss, one hit, stable hash $hash1"
