#!/usr/bin/env bash
# End-to-end smoke test of the backend race: start `xhybrid serve` on a
# loopback socket, list the backend roster, race the demo workload
# across the full fleet, and assert the race's hybrid leg stored a plan
# whose bytes are identical to a plain /v1/plan submission of the same
# request — the race must ride the normal planning path, not fork it.
#
# Usage: scripts/race_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

work="$(mktemp -d "${TMPDIR:-/tmp}/xhc-race-smoke.XXXXXX")"
daemon_pid=""
cleanup() {
  [[ -n "$daemon_pid" ]] && kill "$daemon_pid" 2>/dev/null || true
  rm -rf "$work"
}
trap cleanup EXIT

cargo build -q --release --bin xhybrid
xhybrid=target/release/xhybrid

"$xhybrid" gen --profile demo --out "$work/demo.xmap"

"$xhybrid" serve --addr 127.0.0.1:0 --store "$work/store" > "$work/serve.log" &
daemon_pid=$!
# The daemon prints `listening on ADDR` once bound.
for _ in $(seq 1 100); do
  addr="$(sed -n 's/^listening on //p' "$work/serve.log")"
  [[ -n "$addr" ]] && break
  sleep 0.1
done
[[ -n "${addr:-}" ]] || { echo "daemon never bound"; cat "$work/serve.log"; exit 1; }
host="${addr%:*}"; port="${addr##*:}"
echo "daemon up on $addr"

# Raw HTTP over /dev/tcp: request with a Content-Length body, print the
# response (headers + body) on stdout.
http() { # method path [body-file]
  local method=$1 path=$2 body="${3:-}"
  exec 3<>"/dev/tcp/$host/$port"
  if [[ -n "$body" ]]; then
    printf 'POST %s HTTP/1.1\r\nHost: x\r\nContent-Length: %s\r\nConnection: close\r\n\r\n' \
      "$path" "$(wc -c < "$body")" >&3
    cat "$body" >&3
  else
    printf '%s %s HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n' "$method" "$path" >&3
  fi
  cat <&3
  exec 3<&- 3>&-
}

# The roster lists all five backends, hybrid as default.
http GET /v1/backends > "$work/backends.txt"
for id in hybrid masking canceling superset xcode; do
  grep -q "\"id\":\"$id\"" "$work/backends.txt" || { echo "missing backend $id"; cat "$work/backends.txt"; exit 1; }
done
grep -q '"default":true' "$work/backends.txt"

# Race the fleet: all five entries, the hybrid leg cold.
http POST '/v1/plan/race?m=16&q=3' "$work/demo.xmap" > "$work/race.txt"
grep -q '^HTTP/1.1 200' "$work/race.txt" || { echo "race failed"; cat "$work/race.txt"; exit 1; }
for id in hybrid masking canceling superset xcode; do
  grep -q "\"backend\":\"$id\"" "$work/race.txt" || { echo "race lost backend $id"; cat "$work/race.txt"; exit 1; }
done
grep -q '"cache":"miss"' "$work/race.txt"
grep -q '"pareto":true' "$work/race.txt"
hash="$(tr ',' '\n' < "$work/race.txt" | sed -n 's/.*"plan_hash":"\([0-9a-f]\{16\}\)".*/\1/p' | head -n1)"
[[ -n "$hash" ]] || { echo "race reported no plan hash"; cat "$work/race.txt"; exit 1; }
echo "race OK, hybrid plan hash $hash"

# The plan the race stored is byte-identical to the single-backend path:
# fetch it by hash, then submit the same request through /v1/plan (must
# be a cache hit) and compare the plan bytes.
"$xhybrid" fetch --addr "$addr" --hash "$hash" --out "$work/raced.plan" > /dev/null
"$xhybrid" fetch --addr "$addr" "$work/demo.xmap" --m 16 --q 3 --out "$work/direct.plan" \
  | tee "$work/direct.txt"
grep -q 'cache            : hit' "$work/direct.txt" || { echo "race did not warm the plan cache"; exit 1; }
grep -q "plan hash        : $hash" "$work/direct.txt" || { echo "hash mismatch vs /v1/plan"; exit 1; }
cmp "$work/raced.plan" "$work/direct.plan" || { echo "race plan bytes differ from /v1/plan"; exit 1; }

# Unknown backends are rejected up front (the XL0501 contract).
http POST '/v1/plan/race?m=16&q=3&backends=bogus' "$work/demo.xmap" > "$work/bogus.txt"
grep -q '^HTTP/1.1 400' "$work/bogus.txt" || { echo "bogus roster not rejected"; cat "$work/bogus.txt"; exit 1; }

echo "race smoke OK: 5 backends, hybrid leg byte-identical under hash $hash"
