#!/usr/bin/env bash
# End-to-end smoke test of the tracing layer: generate a scaled CKT-A
# workload, run `xhybrid plan --trace`, and assert the chrome://tracing
# export parses as JSON and contains the engine spans the DESIGN doc
# promises (partition.round, gauss.eliminate) plus the cancel counters
# and the packed-kernel counters (xbm.stream_rows from the streaming
# matrix build, xbm.lane_words from the unrolled sweep, xbm.shards from
# the intra-candidate sharded path — scale 10 keeps the active-cell pool
# above the engine's minimum shard size, and --threads 4 makes the pool
# wide enough that the seed evaluation shards its sweep).
#
# Usage: scripts/trace_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

work="$(mktemp -d "${TMPDIR:-/tmp}/xhc-trace-smoke.XXXXXX")"
cleanup() { rm -rf "$work"; }
trap cleanup EXIT

cargo build -q --release --bin xhybrid
xhybrid=target/release/xhybrid

"$xhybrid" gen --profile ckt-a --scale 10 --out "$work/ckta.xmap"
"$xhybrid" plan "$work/ckta.xmap" --strategy best-cost --threads 4 \
  --trace "$work/trace.json" | tee "$work/plan.txt"
grep -q '^partitions' "$work/plan.txt"

python3 - "$work/trace.json" <<'EOF'
import json, sys

events = json.load(open(sys.argv[1]))
assert isinstance(events, list) and events, "trace export is not a non-empty JSON array"

spans = {}
counters = {}
for e in events:
    assert e["ph"] in ("X", "C"), e
    if e["ph"] == "X":
        assert isinstance(e["ts"], (int, float)) and e["dur"] >= 0, e
        spans[e["name"]] = spans.get(e["name"], 0) + 1
    else:
        counters[e["name"]] = e["args"]["value"]

for name in ("partition.run", "partition.round", "gauss.eliminate", "cancel.block"):
    assert spans.get(name, 0) >= 1, (name, spans)
for name in ("cancel.halts", "cancel.x_total"):
    assert name in counters, (name, counters)

# Packed-kernel counters: the streaming matrix build reports its row
# count, the unrolled sweep its full-lane word coverage, and the
# intra-candidate sharded path its shard fan-out.
for name in ("xbm.superset_calls", "xbm.stream_rows", "xbm.lane_words", "xbm.shards"):
    assert counters.get(name, 0) > 0, (name, counters)

rounds = [e for e in events if e["ph"] == "X" and e["name"] == "partition.round"]
assert all("round" in e["args"] for e in rounds), rounds
print(f"trace smoke OK: {sum(spans.values())} spans "
      f"({spans.get('partition.round')} rounds), counters {sorted(counters)}")
EOF
