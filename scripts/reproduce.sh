#!/usr/bin/env bash
# Regenerates every paper artifact and ablation in one pass.
# Usage: scripts/reproduce.sh [output-dir]
set -euo pipefail
cd "$(dirname "$0")/.."
out="${1:-reproduction}"
mkdir -p "$out"

bins=(
  table1
  table1_sweep
  fig2_symbolic
  fig4_6_worked_example
  sec3_correlation
  intra_vs_inter
  coverage_preservation
  ablation_partition_depth
  ablation_cell_selection
  ablation_misr_config
  ablation_split_strategy
  ablation_baselines
  aliasing_study
  circuit_flow
)

cargo build --release -p xhc-bench

for bin in "${bins[@]}"; do
  echo "== $bin =="
  cargo run -q --release -p xhc-bench --bin "$bin" | tee "$out/$bin.txt"
  echo
done

echo "reports written to $out/"
echo
echo "For perf snapshots (incl. daemon plan latency) run:"
echo "  scripts/bench_snapshot.sh"
echo "For an end-to-end daemon smoke test run:"
echo "  scripts/serve_smoke.sh"
