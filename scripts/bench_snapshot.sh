#!/usr/bin/env bash
# Captures a machine-readable perf snapshot of the two kernel benches.
#
# Usage: scripts/bench_snapshot.sh [output-dir]
#
# Writes BENCH_partition.json and BENCH_gauss.json (min/median/mean ns
# per case) to the output dir (default: repo root). Set BENCH_BUDGET_MS
# to change the per-case budget (default 300; CI smoke uses 20).
set -euo pipefail
cd "$(dirname "$0")/.."
out="${1:-.}"
budget="${BENCH_BUDGET_MS:-300}"
mkdir -p "$out"
# Cargo runs bench binaries with the package directory as cwd; hand the
# harness an absolute path so snapshots land where the caller asked.
out="$(cd "$out" && pwd)"

cargo build --release -p xhc-bench --benches

cargo bench -q -p xhc-bench --bench partition_engine -- \
  --budget-ms "$budget" --json "$out/BENCH_partition.json"
cargo bench -q -p xhc-bench --bench gauss_elimination -- \
  --budget-ms "$budget" --json "$out/BENCH_gauss.json"

echo "snapshots written to $out/BENCH_partition.json and $out/BENCH_gauss.json"
