#!/usr/bin/env bash
# Captures a machine-readable perf snapshot of the kernel benches and
# the planning-daemon latency bench.
#
# Usage: scripts/bench_snapshot.sh [output-dir]
#
# Writes BENCH_partition.json, BENCH_gauss.json, and BENCH_serve.json
# (min/median/p95/p99/mean ns per case) to the output dir (default:
# repo root). Set BENCH_BUDGET_MS to change the per-case budget
# (default 300; CI smoke uses 20). BENCH_serve.json additionally gets
# the xhc-loadgen keep-alive percentiles merged in (LOADGEN_CLIENTS
# concurrent clients, default 1000; LOADGEN_REQUESTS each, default 10).
set -euo pipefail
cd "$(dirname "$0")/.."
out="${1:-.}"
budget="${BENCH_BUDGET_MS:-300}"
mkdir -p "$out"
# Cargo runs bench binaries with the package directory as cwd; hand the
# harness an absolute path so snapshots land where the caller asked.
out="$(cd "$out" && pwd)"

cargo build --release -p xhc-bench --benches

cargo bench -q -p xhc-bench --bench partition_engine -- \
  --budget-ms "$budget" --json "$out/BENCH_partition.json"
cargo bench -q -p xhc-bench --bench gauss_elimination -- \
  --budget-ms "$budget" --json "$out/BENCH_gauss.json"
cargo bench -q -p xhc-bench --bench serve_latency -- \
  --budget-ms "$budget" --json "$out/BENCH_serve.json"

cargo build --release -q -p xhc-bench --bin xhc-loadgen
target/release/xhc-loadgen \
  --clients "${LOADGEN_CLIENTS:-1000}" \
  --requests "${LOADGEN_REQUESTS:-10}" \
  --merge "$out/BENCH_serve.json"

echo "snapshots written to $out/BENCH_{partition,gauss,serve}.json"
