#!/usr/bin/env bash
# End-to-end smoke test of the plan-certificate checker: plan + certify
# the demo workload through `xhybrid verify`, re-verify the written
# artifacts independently, then prove the checker actually rejects —
# a certificate paired with the wrong X map, and a corrupted
# certificate file. Finally, on a scaled CKT-B workload the verify
# pass must cost under 10% of planning time.
#
# Usage: scripts/verify_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

work="$(mktemp -d "${TMPDIR:-/tmp}/xhc-verify-smoke.XXXXXX")"
cleanup() { rm -rf "$work"; }
trap cleanup EXIT

cargo build -q --release --bin xhybrid
xhybrid=target/release/xhybrid

# --- fresh mode: plan, certify, self-check, write both artifacts ------
"$xhybrid" gen --profile demo --out "$work/demo.xmap"
"$xhybrid" verify "$work/demo.xmap" --m 16 --q 3 \
  --plan-out "$work/demo.plan" --cert-out "$work/demo.cert" \
  | tee "$work/fresh.txt"
grep -q '^certificate' "$work/fresh.txt"
[[ -s "$work/demo.plan" && -s "$work/demo.cert" ]]

# --- artifact mode: an independent process re-checks the files -------
"$xhybrid" verify "$work/demo.xmap" \
  --plan "$work/demo.plan" --cert "$work/demo.cert" | tee "$work/re.txt"
grep -q '^verified' "$work/re.txt"

# --- rejection 1: right certificate, wrong X map ---------------------
"$xhybrid" gen --profile ckt-c --scale 8 --out "$work/other.xmap"
if "$xhybrid" verify "$work/other.xmap" \
    --plan "$work/demo.plan" --cert "$work/demo.cert" 2> "$work/err1.txt"; then
  echo "checker accepted a certificate against the wrong X map" >&2
  exit 1
fi
grep -q 'FAILED' "$work/err1.txt" || { cat "$work/err1.txt"; exit 1; }
echo "mismatched X map correctly rejected"

# --- rejection 2: corrupted certificate bytes ------------------------
cp "$work/demo.cert" "$work/bad.cert"
# Flip one byte inside the META payload (past the 8-byte header and the
# section table): either the decoder or the checker must refuse it.
printf '\xff' | dd of="$work/bad.cert" bs=1 seek=40 conv=notrunc status=none
if "$xhybrid" verify "$work/demo.xmap" \
    --plan "$work/demo.plan" --cert "$work/bad.cert" 2> "$work/err2.txt"; then
  echo "checker accepted a corrupted certificate" >&2
  exit 1
fi
echo "corrupted certificate correctly rejected"

# --- overhead bound on a scaled paper workload -----------------------
"$xhybrid" gen --profile ckt-b --scale 4 --out "$work/cktb.xmap"
"$xhybrid" verify "$work/cktb.xmap" --m 16 --q 3 --strategy best-cost \
  | tee "$work/scaled.txt"
ratio="$(sed -n 's/.*(\([0-9.]*\)% of plan).*/\1/p' "$work/scaled.txt")"
[[ -n "$ratio" ]] || { echo "no verify/plan ratio in output"; exit 1; }
awk -v r="$ratio" 'BEGIN { exit !(r < 10.0) }' \
  || { echo "verify overhead ${ratio}% exceeds the 10% bound"; exit 1; }

echo "verify smoke OK: round-trip checked, rejections fired, overhead ${ratio}%"
