#!/usr/bin/env bash
# Smoke test for the event-loop front end under concurrency, via the
# xhc-loadgen closed-loop load generator.
#
# Two runs against an in-process daemon:
#
#   1. Headroom run — LOADGEN_CLIENTS keep-alive clients (default 1000)
#      with admission limits sized above the offered load. The
#      generator itself fails unless every response is a 200 whose body
#      is byte-identical to the offline engine and nothing is shed.
#      The percentile snapshot it writes is then shape-checked
#      (p50/p95/p99 present and ordered).
#
#   2. Overload run — admission ceiling forced to 1 so the daemon MUST
#      shed; the generator fails unless 429s occur and every one
#      carries an in-range Retry-After.
#
# Usage: scripts/serve_load_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

cargo build --release -q -p xhc-bench --bin xhc-loadgen

echo "[load-smoke] headroom run"
target/release/xhc-loadgen \
  --clients "${LOADGEN_CLIENTS:-1000}" \
  --requests "${LOADGEN_REQUESTS:-5}" \
  --json "$tmp/load.json"

python3 - "$tmp/load.json" <<'EOF'
import json, sys

doc = json.load(open(sys.argv[1]))
cases = doc["cases"]
assert cases, "loadgen snapshot has no cases"
for c in cases:
    for field in ("min_ns", "median_ns", "p95_ns", "p99_ns", "mean_ns"):
        assert field in c, f"{c['name']}: missing {field}"
    assert c["min_ns"] <= c["median_ns"] <= c["p95_ns"] <= c["p99_ns"], \
        f"{c['name']}: percentiles out of order"
    print(f"[load-smoke] {c['name']}: p50 {c['median_ns']} ns, "
          f"p95 {c['p95_ns']} ns, p99 {c['p99_ns']} ns over {c['iters']} requests")
print("[load-smoke] snapshot shape ok")
EOF

echo "[load-smoke] overload run (admission ceiling 1, expecting 429s)"
target/release/xhc-loadgen \
  --clients 64 --requests 3 --workers 1 \
  --max-inflight 1 --queue-depth 1 --allow-shed

echo "[load-smoke] ok"
