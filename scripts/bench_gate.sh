#!/usr/bin/env bash
# Regression gate over the committed kernel bench snapshots.
#
# Reruns the partition and gauss benches and fails if any case's median
# regresses by more than BENCH_GATE_TOLERANCE_PCT percent (default 30 —
# tolerant of CI noise, still catches order-of-magnitude slips) against
# the committed BENCH_partition.json / BENCH_gauss.json. Cases present
# on only one side (added or retired benches) are reported and skipped.
#
# BENCH_GATE_INJECT_SLOWDOWN (a multiplier, default 1) scales the fresh
# medians before comparison; CI runs the gate a second time with 2 to
# prove it really fails on a 2x slip.
#
# The serve_latency bench is also rerun and its tail gated: each case's
# p99 may regress at most SERVE_P99_TOLERANCE_PCT percent (default 150 —
# p99 over a loopback daemon is far noisier than a kernel median)
# against the committed BENCH_serve.json. Cases present on only one
# side — e.g. the committed loadgen/ cases, which only the full
# bench_snapshot.sh run produces — are reported and skipped.
#
# On top of the relative gate, the full-size CKT-A BestCost case must
# finish under an absolute wall-clock budget (FULL_CKT_A_BUDGET_NS,
# default 8s — the "low single-digit seconds" acceptance bar for the
# paper's 505,050-cell circuit).
#
# Usage: scripts/bench_gate.sh
set -euo pipefail
cd "$(dirname "$0")/.."
budget="${BENCH_BUDGET_MS:-300}"
tol="${BENCH_GATE_TOLERANCE_PCT:-30}"
inject="${BENCH_GATE_INJECT_SLOWDOWN:-1}"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

cargo build --release -p xhc-bench --benches

cargo bench -q -p xhc-bench --bench partition_engine -- \
  --budget-ms "$budget" --json "$tmp/BENCH_partition.json"
cargo bench -q -p xhc-bench --bench gauss_elimination -- \
  --budget-ms "$budget" --json "$tmp/BENCH_gauss.json"
cargo bench -q -p xhc-bench --bench serve_latency -- \
  --budget-ms "$budget" --json "$tmp/BENCH_serve.json"

python3 - "$tol" "$inject" "$tmp" <<'EOF'
import json, sys

tol = float(sys.argv[1])
inject = float(sys.argv[2])
tmp = sys.argv[3]
failed = False
for name in ("partition", "gauss"):
    committed = {c["name"]: c for c in json.load(open(f"BENCH_{name}.json"))["cases"]}
    fresh = {c["name"]: c for c in json.load(open(f"{tmp}/BENCH_{name}.json"))["cases"]}
    for case, ref in sorted(committed.items()):
        if case not in fresh:
            print(f"[gate] {name}/{case}: missing from fresh run (skipped)")
            continue
        base = ref["median_ns"]
        now = fresh[case]["median_ns"] * inject
        limit = base * (1 + tol / 100.0)
        ratio = now / base if base else float("inf")
        verdict = "FAIL" if now > limit else "ok"
        print(f"[gate] {name}/{case}: committed {base} ns, fresh {now:.0f} ns "
              f"({ratio:.2f}x) [{verdict}]")
        if now > limit:
            failed = True
    for case in sorted(set(fresh) - set(committed)):
        print(f"[gate] {name}/{case}: new case, no committed baseline (skipped)")
if failed:
    print(f"[gate] FAILED: at least one median regressed more than {tol}% "
          f"vs the committed snapshot")
    sys.exit(1)
print(f"[gate] ok: no median regressed more than {tol}%")
EOF

python3 - "${SERVE_P99_TOLERANCE_PCT:-150}" "$inject" "$tmp" <<'EOF'
import json, sys

tol = float(sys.argv[1])
inject = float(sys.argv[2])
tmp = sys.argv[3]
failed = False
committed = {c["name"]: c for c in json.load(open("BENCH_serve.json"))["cases"]}
fresh = {c["name"]: c for c in json.load(open(f"{tmp}/BENCH_serve.json"))["cases"]}
for case, ref in sorted(committed.items()):
    if case not in fresh:
        print(f"[gate] serve/{case}: missing from fresh run (skipped)")
        continue
    base = ref["p99_ns"]
    now = fresh[case]["p99_ns"] * inject
    limit = base * (1 + tol / 100.0)
    ratio = now / base if base else float("inf")
    verdict = "FAIL" if now > limit else "ok"
    print(f"[gate] serve/{case}: committed p99 {base} ns, fresh {now:.0f} ns "
          f"({ratio:.2f}x) [{verdict}]")
    if now > limit:
        failed = True
for case in sorted(set(fresh) - set(committed)):
    print(f"[gate] serve/{case}: new case, no committed baseline (skipped)")
if failed:
    print(f"[gate] FAILED: a serve p99 regressed more than {tol}% "
          f"vs the committed snapshot")
    sys.exit(1)
print(f"[gate] ok: no serve p99 regressed more than {tol}%")
EOF

python3 - "$tmp" "${FULL_CKT_A_BUDGET_NS:-8000000000}" <<'EOF'
import json, sys

fresh = {c["name"]: c
         for c in json.load(open(f"{sys.argv[1]}/BENCH_partition.json"))["cases"]}
budget = int(sys.argv[2])
case = fresh.get("strategy/best_cost_full_ckt_a")
if case is None:
    print("[gate] FAILED: strategy/best_cost_full_ckt_a missing from fresh run")
    sys.exit(1)
med = case["median_ns"]
verdict = "FAIL" if med > budget else "ok"
print(f"[gate] full ckt-a absolute: median {med} ns vs budget {budget} ns [{verdict}]")
if med > budget:
    print("[gate] FAILED: full CKT-A BestCost exceeded the absolute wall-clock budget")
    sys.exit(1)
EOF
