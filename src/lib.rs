//! # xhybrid
//!
//! A from-scratch reproduction of *"Reducing Control Bit Overhead for
//! X-Masking/X-Canceling Hybrid Architecture via Pattern Partitioning"*
//! (Kang, Touba, Yang — DAC 2016), together with every substrate the paper
//! depends on: three-valued gate-level simulation, scan infrastructure,
//! stuck-at fault simulation, PODEM ATPG, MISR compaction with symbolic
//! X-canceling, and synthetic industrial workloads.
//!
//! This crate is a facade: it re-exports the workspace's subsystem crates
//! under stable module names.
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`bits`] | `xhc-bits` | bit vectors, pattern sets, GF(2) Gaussian elimination |
//! | [`logic`] | `xhc-logic` | netlists, 0/1/X simulation, X sources, circuit generation |
//! | [`scan`] | `xhc-scan` | scan chains, capture harness, sparse X maps, ATE model |
//! | [`fault`] | `xhc-fault` | stuck-at faults, fault simulation, coverage |
//! | [`atpg`] | `xhc-atpg` | PODEM + random-pattern test generation |
//! | [`misr`] | `xhc-misr` | MISR, symbolic simulation, X-masking, X-canceling |
//! | [`core`] | `xhc-core` | **the paper's contribution**: correlation analysis, pattern partitioning, hybrid cost model, baselines |
//! | [`workload`] | `xhc-workload` | synthetic CKT-A/B/C industrial X profiles |
//! | [`par`] | `xhc-par` | scoped-thread work pool (deterministic `par_map`/`par_chunks`) |
//! | [`trace`] | `xhc-trace` | zero-dependency structured tracing: spans, counters, chrome://tracing export |
//! | [`wire`] | `xhc-wire` | versioned binary wire format + content addressing for artifacts |
//! | [`verify`] | `xhc-verify` | plan certificates + engine-independent static checker |
//! | [`serve`] | `xhc-serve` | HTTP planning daemon with a content-addressed plan cache |
//!
//! The [`prelude`] re-exports the handful of types nearly every user
//! touches, so the common pipeline is one import.
//!
//! # Quickstart
//!
//! Reproduce the paper's Fig. 5/6 worked example:
//!
//! ```
//! use xhybrid::prelude::*;
//!
//! // The Fig. 4 X map: 8 patterns, 5 chains x 3 cells, 28 X's.
//! let cfg = ScanConfig::uniform(5, 3);
//! let mut b = XMapBuilder::new(cfg, 8);
//! for p in [0, 3, 4, 5] {
//!     b.add_x(CellId::new(0, 0), p).unwrap();
//!     b.add_x(CellId::new(1, 0), p).unwrap();
//!     b.add_x(CellId::new(2, 0), p).unwrap();
//! }
//! for p in [0, 4] { b.add_x(CellId::new(1, 2), p).unwrap(); }
//! for p in [0, 1, 2, 3, 4, 6, 7] { b.add_x(CellId::new(3, 2), p).unwrap(); }
//! for p in [0, 1, 3, 4, 6, 7] { b.add_x(CellId::new(4, 1), p).unwrap(); }
//! b.add_x(CellId::new(4, 2), 5).unwrap();
//! let xmap = b.finish();
//!
//! let report = evaluate_hybrid(&xmap, XCancelConfig::new(10, 2), CellSelection::First);
//! assert_eq!(report.outcome.partitions.len(), 3); // Fig. 5's final state
//! assert_eq!(report.outcome.masked_x(), 23);      // 23 of 28 X's masked
//! assert_eq!(report.outcome.cost.total_ceil(), 58); // 57.5 -> 58 bits
//! assert_eq!(report.masking_only_bits, 120);      // conventional masking
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use xhc_atpg as atpg;
pub use xhc_bits as bits;
pub use xhc_core as core;
pub use xhc_fault as fault;
pub use xhc_logic as logic;
pub use xhc_misr as misr;
pub use xhc_par as par;
pub use xhc_scan as scan;
pub use xhc_serve as serve;
pub use xhc_trace as trace;
pub use xhc_verify as verify;
pub use xhc_wire as wire;
pub use xhc_workload as workload;

pub mod prelude {
    //! The one-line import for the common pipeline: build (or generate)
    //! an X map, configure the canceler, run the partition engine.
    //!
    //! ```
    //! use xhybrid::prelude::*;
    //!
    //! let xmap = WorkloadSpec::default().generate();
    //! let outcome = PartitionEngine::with_options(
    //!     XCancelConfig::new(32, 7),
    //!     PlanOptions::default(),
    //! )
    //! .run(&xmap);
    //! assert!(!outcome.partitions.is_empty());
    //! ```
    pub use xhc_core::{
        all_backends, backend_for, evaluate_hybrid, BackendCaps, BackendId, BackendReport,
        CellSelection, HybridCost, HybridReport, PartitionEngine, PartitionOutcome, PlanBackend,
        PlanOptions, SplitStrategy, WorkloadInput,
    };
    pub use xhc_misr::XCancelConfig;
    pub use xhc_scan::{CellId, ScanConfig, ScanError, XMap, XMapBuilder};
    pub use xhc_workload::WorkloadSpec;
}
