//! `xhybrid` — command-line front end for the hybrid X-handling toolkit.
//!
//! ```text
//! xhybrid gen --profile ckt-b [--scale N] [--seed S] --out FILE
//! xhybrid analyze FILE
//! xhybrid partition FILE [--m 32] [--q 7] [--strategy largest|best-cost]
//! xhybrid schedule FILE [--m 32] [--q 7] [--channels 32]
//! ```
//!
//! Files use the `xmap v1` text format (see `xhybrid::scan::write_xmap`).

use std::fs::File;
use std::process::ExitCode;

use xhybrid::core::{
    inter_correlation_stats, intra_correlation_stats, schedule_hybrid, PartitionEngine,
    ScheduleOptions, SplitStrategy,
};
use xhybrid::misr::XCancelConfig;
use xhybrid::scan::{read_xmap, write_xmap, AteConfig, XMap};
use xhybrid::workload::WorkloadSpec;

fn usage() -> &'static str {
    "usage:
  xhybrid gen --profile <ckt-a|ckt-b|ckt-c|demo> [--scale N] [--seed S] --out FILE
  xhybrid analyze FILE
  xhybrid partition FILE [--m 32] [--q 7] [--strategy largest|best-cost]
  xhybrid schedule FILE [--m 32] [--q 7] [--channels 32]"
}

/// Minimal flag parser: `--name value` pairs plus positional arguments.
struct Args {
    positional: Vec<String>,
    flags: Vec<(String, String)>,
}

impl Args {
    fn parse(argv: &[String]) -> Result<Args, String> {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut it = argv.iter();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                let value = it
                    .next()
                    .ok_or_else(|| format!("flag --{name} needs a value"))?;
                flags.push((name.to_string(), value.clone()));
            } else {
                positional.push(a.clone());
            }
        }
        Ok(Args { positional, flags })
    }

    fn flag(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn flag_parse<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.flag(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|e| format!("bad --{name}: {e}")),
        }
    }
}

fn load(path: &str) -> Result<XMap, String> {
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    read_xmap(file).map_err(|e| format!("cannot parse {path}: {e}"))
}

fn cancel_config(args: &Args) -> Result<XCancelConfig, String> {
    let m: usize = args.flag_parse("m", 32)?;
    let q: usize = args.flag_parse("q", 7)?;
    if q == 0 || q >= m {
        return Err(format!("need 0 < q < m, got m={m} q={q}"));
    }
    Ok(XCancelConfig::new(m, q))
}

fn cmd_gen(args: &Args) -> Result<(), String> {
    let profile = args.flag("profile").unwrap_or("demo");
    let mut spec = match profile {
        "ckt-a" => WorkloadSpec::ckt_a(),
        "ckt-b" => WorkloadSpec::ckt_b(),
        "ckt-c" => WorkloadSpec::ckt_c(),
        "demo" => WorkloadSpec::default(),
        other => return Err(format!("unknown profile `{other}`")),
    };
    let scale: usize = args.flag_parse("scale", 1)?;
    if scale > 1 {
        spec.total_cells = (spec.total_cells / scale).max(spec.num_chains.max(4));
        spec.num_chains = (spec.num_chains / scale).max(4);
        spec.num_patterns = (spec.num_patterns / scale).max(20);
    }
    spec.seed = args.flag_parse("seed", spec.seed)?;
    let out = args.flag("out").ok_or("gen needs --out FILE")?;
    let xmap = spec.generate();
    let file = File::create(out).map_err(|e| format!("cannot create {out}: {e}"))?;
    write_xmap(file, &xmap).map_err(|e| format!("cannot write {out}: {e}"))?;
    eprintln!(
        "wrote {out}: {} cells / {} chains / {} patterns, {} X's ({:.3}%)",
        xmap.config().total_cells(),
        xmap.config().num_chains(),
        xmap.num_patterns(),
        xmap.total_x(),
        100.0 * xmap.x_density()
    );
    Ok(())
}

fn cmd_analyze(args: &Args) -> Result<(), String> {
    let path = args.positional.first().ok_or("analyze needs a FILE")?;
    let xmap = load(path)?;
    let inter = inter_correlation_stats(&xmap);
    let intra = intra_correlation_stats(&xmap);
    println!("cells            : {}", inter.total_cells);
    println!(
        "X-capturing cells: {} ({:.2}%)",
        inter.x_cells,
        100.0 * inter.x_cells as f64 / inter.total_cells.max(1) as f64
    );
    println!(
        "total X's        : {} ({:.3}% density)",
        inter.total_x,
        100.0 * xmap.x_density()
    );
    println!(
        "90% of X's in    : {:.2}% of cells",
        100.0 * inter.cells_for_90pct
    );
    println!(
        "inter-correlation: largest identical-set group = {} cells; largest count class = {} cells x {} X's",
        inter.largest_identical_group, inter.largest_count_class, inter.largest_count_class_count
    );
    println!(
        "intra-correlation: {} of {} X-cells have an X neighbour; {} runs, longest {}{}",
        intra.x_cells_with_x_neighbour,
        intra.x_cells,
        intra.runs,
        intra.longest_run,
        match intra.mean_adjacent_jaccard {
            Some(j) => format!("; adjacent-set Jaccard {j:.2}"),
            None => String::new(),
        }
    );
    Ok(())
}

fn cmd_partition(args: &Args) -> Result<(), String> {
    let path = args.positional.first().ok_or("partition needs a FILE")?;
    let xmap = load(path)?;
    let cancel = cancel_config(args)?;
    let strategy = match args.flag("strategy").unwrap_or("largest") {
        "largest" => SplitStrategy::LargestClass,
        "best-cost" => SplitStrategy::BestCost,
        other => return Err(format!("unknown strategy `{other}`")),
    };
    let outcome = PartitionEngine::new(cancel)
        .with_strategy(strategy)
        .run(&xmap);
    let report = xhybrid::core::report_for_outcome(&xmap, cancel, outcome);
    println!(
        "partitions       : {} (after {} rounds)",
        report.outcome.partitions.len(),
        report.outcome.rounds.len()
    );
    println!(
        "X's              : {} masked + {} leaked = {}",
        report.outcome.masked_x(),
        report.outcome.leaked_x(),
        report.total_x
    );
    println!(
        "control bits     : {:.1} (mask {} + cancel {:.1})",
        report.proposed_bits, report.outcome.cost.masking_bits, report.outcome.cost.canceling_bits
    );
    println!(
        "vs baselines     : {:.2}x over X-masking-only, {:.2}x over X-canceling-only",
        report.impv_over_masking, report.impv_over_canceling
    );
    println!(
        "test time        : {:.3} -> {:.3} ({:.2}x)",
        report.time_canceling_only, report.time_proposed, report.time_impv
    );
    Ok(())
}

fn cmd_schedule(args: &Args) -> Result<(), String> {
    let path = args.positional.first().ok_or("schedule needs a FILE")?;
    let xmap = load(path)?;
    let cancel = cancel_config(args)?;
    let channels: usize = args.flag_parse("channels", 32)?;
    let outcome = PartitionEngine::new(cancel).run(&xmap);
    let schedule = schedule_hybrid(
        xmap.config(),
        xmap.num_patterns(),
        &outcome,
        cancel,
        AteConfig::new(channels),
        ScheduleOptions::default(),
    );
    println!("shift cycles     : {}", schedule.shift_cycles);
    println!("capture cycles   : {}", schedule.capture_cycles);
    println!(
        "mask loads       : {} ({} reload cycles)",
        schedule.mask_loads, schedule.mask_reload_cycles
    );
    println!(
        "halts            : {} ({} extraction cycles)",
        schedule.halts, schedule.extraction_cycles
    );
    println!("total cycles     : {}", schedule.total_cycles());
    println!("normalized time  : {:.4}", schedule.normalized());
    Ok(())
}

fn run() -> Result<(), String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        return Err(usage().to_string());
    };
    let args = Args::parse(rest)?;
    match cmd.as_str() {
        "gen" => cmd_gen(&args),
        "analyze" => cmd_analyze(&args),
        "partition" => cmd_partition(&args),
        "schedule" => cmd_schedule(&args),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_parse_flags_and_positional() {
        let argv: Vec<String> = ["file.xmap", "--m", "16", "--q", "3"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let args = Args::parse(&argv).unwrap();
        assert_eq!(args.positional, vec!["file.xmap"]);
        assert_eq!(args.flag("m"), Some("16"));
        assert_eq!(args.flag_parse::<usize>("q", 7).unwrap(), 3);
        assert_eq!(args.flag_parse::<usize>("channels", 32).unwrap(), 32);
    }

    #[test]
    fn args_missing_value_is_error() {
        let argv = vec!["--m".to_string()];
        assert!(Args::parse(&argv).is_err());
    }

    #[test]
    fn cancel_config_validates() {
        let argv: Vec<String> = ["--m", "8", "--q", "8"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let args = Args::parse(&argv).unwrap();
        assert!(cancel_config(&args).is_err());
    }
}
