//! `xhybrid` — command-line front end for the hybrid X-handling toolkit.
//!
//! ```text
//! xhybrid gen --profile ckt-b [--scale N] [--seed S] --out FILE
//! xhybrid analyze FILE
//! xhybrid partition FILE [--m 32] [--q 7] [--strategy largest|best-cost]
//! xhybrid schedule FILE [--m 32] [--q 7] [--channels 32]
//! xhybrid verify FILE [--m 32] [--q 7] [--plan-out FILE] [--cert-out FILE]
//! xhybrid serve [--addr 127.0.0.1:7878] [--store DIR] [--threads N]
//! xhybrid fetch --addr HOST:PORT (FILE | --hash HASH) [--out FILE]
//! ```
//!
//! Files use the `xmap v1` text format (see `xhybrid::scan::write_xmap`)
//! or the binary wire format (see `xhybrid::wire`). Exit codes follow the
//! `xhc-lint` convention: `0` success, `1` runtime failure, `2` usage
//! error. Every subcommand answers `--help`.

use std::fs::File;
use std::io::Write as _;
use std::path::Path;
use std::process::ExitCode;

use xhybrid::core::{
    backend_for, inter_correlation_stats, intra_correlation_stats, schedule_hybrid, BackendId,
    PartitionEngine, PlanOptions, ScheduleOptions, WorkloadInput,
};
use xhybrid::logic::Trit;
use xhybrid::misr::{CancelSession, Taps, XCancelConfig};
use xhybrid::scan::{read_xmap, write_xmap, AteConfig, ResponseMatrix, XMap};
use xhybrid::serve::{client, parse_policy, parse_strategy, Server, ServerConfig};
use xhybrid::trace::TraceSession;
use xhybrid::wire::{decode_plan, parse_hash_hex, peek_kind};
use xhybrid::workload::WorkloadSpec;

fn usage() -> &'static str {
    "usage:
  xhybrid gen --profile <ckt-a|ckt-b|ckt-c|demo> [--scale N] [--seed S] --out FILE
  xhybrid analyze FILE
  xhybrid partition FILE [--m 32] [--q 7] [--strategy largest|best-cost]
  xhybrid plan (FILE | --profile <ckt-a|ckt-b|ckt-c|demo> [--scale N])
               [--backend hybrid|masking|canceling|superset|xcode]
               [--m 32] [--q 7] [--strategy largest|best-cost]
               [--policy first|seeded|global-max-x] [--seed S] [--threads N]
               [--max-rounds N] [--cost-stop 0|1] [--trace FILE]
  xhybrid schedule FILE [--m 32] [--q 7] [--channels 32]
  xhybrid verify FILE [--m 32] [--q 7] [engine flags] [--plan-out FILE]
                [--cert-out FILE] | FILE --plan FILE --cert FILE
  xhybrid serve [--addr 127.0.0.1:7878] [--store DIR] [--threads N] [--workers N]
                [--verify-on-write 0|1] [--max-inflight N] [--queue-depth N]
                [--push-metrics URL]
  xhybrid fetch --addr HOST:PORT (FILE | --hash HASH) [--m 32] [--q 7]
                [--strategy largest|best-cost] [--out FILE]

run `xhybrid <command> --help` for per-command details"
}

fn command_help(cmd: &str) -> Option<&'static str> {
    match cmd {
        "gen" => Some(
            "xhybrid gen --profile <ckt-a|ckt-b|ckt-c|demo> [--scale N] [--seed S] --out FILE

Generates a synthetic X map in the `xmap v1` text format.

  --profile  workload preset (paper circuits or the small demo)
  --scale    divide cells/chains/patterns by N (default 1)
  --seed     override the preset's PRNG seed
  --out      output file (required)",
        ),
        "analyze" => Some(
            "xhybrid analyze FILE

Prints density and correlation statistics for an X map.",
        ),
        "partition" => Some(
            "xhybrid partition FILE [--m 32] [--q 7] [--strategy largest|best-cost]

Runs the pattern-partitioning engine on an X map and reports the
hybrid control-bit cost against the masking-only and canceling-only
baselines.

  --m         MISR length (default 32)
  --q         X-cancel quotient, 0 < q < m (default 7)
  --strategy  partition split heuristic (default largest)",
        ),
        "plan" => Some(
            "xhybrid plan (FILE | --profile <ckt-a|ckt-b|ckt-c|demo> [--scale N])
             [--backend hybrid|masking|canceling|superset|xcode]
             [--m 32] [--q 7] [--strategy largest|best-cost]
             [--policy first|seeded|global-max-x] [--seed S] [--threads N]
             [--max-rounds N] [--cost-stop 0|1] [--trace FILE]

Runs the partition engine with the full option set, validates the plan
by running a bounded X-canceling session over the masked responses, and
optionally records the whole run as a chrome://tracing JSON file.
Instead of a FILE, --profile plans a freshly generated paper workload
in memory (full size; --scale N shrinks it), skipping the text format
round trip — `--profile ckt-a` is the full 505,050-cell circuit.

  --profile     generate and plan a workload preset instead of a FILE
  --scale       divide the profile's cells/chains/patterns by N
  --backend     compaction backend (default hybrid). The non-hybrid
                backends (masking, canceling, superset, xcode) skip the
                partition engine and print the uniform backend report:
                control bits, masked/leaked X's, lost observability
  --m, --q      cancel parameters (defaults 32, 7)
  --strategy    partition split heuristic (default largest)
  --policy      pivot-cell selection policy (default first)
  --seed        stream seed, only with --policy seeded
  --threads     engine threads, 0 = auto (default 0)
  --max-rounds  cap the number of partitioning rounds
  --cost-stop   1 = stop when the cost stops improving (default), 0 = run
                until no class splits further
  --trace       write a chrome://tracing JSON trace to FILE and print the
                span/counter summary to stderr (open the file at
                chrome://tracing or https://ui.perfetto.dev)",
        ),
        "schedule" => Some(
            "xhybrid schedule FILE [--m 32] [--q 7] [--channels 32]

Schedules the hybrid plan on an ATE model and reports cycle counts.

  --m         MISR length (default 32)
  --q         X-cancel quotient (default 7)
  --channels  ATE channel count (default 32)",
        ),
        "verify" => Some(
            "xhybrid verify FILE [--m 32] [--q 7] [--strategy largest|best-cost]
               [--policy first|seeded|global-max-x] [--seed S] [--threads N]
               [--max-rounds N] [--cost-stop 0|1]
               [--plan-out FILE] [--cert-out FILE]
xhybrid verify FILE --plan FILE --cert FILE

Plans the X map, emits a plan certificate (partition cover witness,
X-class histograms, control-bit accounting) and statically re-checks it
with the engine-independent verifier, reporting plan vs verify wall
time. With --plan/--cert, skips planning and verifies the existing
wire-encoded artifacts against the X map instead; any violated
invariant exits 1 with a typed error.

  --m, --q      cancel parameters (defaults 32, 7; fresh mode only)
  engine flags  as for `xhybrid plan` (fresh mode only)
  --plan-out    write the wire-encoded plan to FILE
  --cert-out    write the wire-encoded certificate to FILE
  --plan        verify this wire-encoded plan instead of planning
  --cert        its certificate (required with --plan; carries (m, q))",
        ),
        "serve" => Some(
            "xhybrid serve [--addr 127.0.0.1:7878] [--store DIR] [--threads N] [--workers N]
              [--verify-on-write 0|1] [--max-inflight N] [--queue-depth N]
              [--push-metrics URL]

Runs the planning daemon. POST an X map (text or wire format) to
/v1/plan and receive the wire-encoded partition plan; plans are cached
on disk keyed by content hash, alongside a plan certificate that
`GET /v1/plan/{hash}/verify` re-checks. Connections are served by a
nonblocking event loop with keep-alive and pipelining; past the
admission limits requests are shed with 429 + Retry-After. See README
`Running as a service`.

  --addr             listen address (port 0 picks a free port; the bound
                     address is printed on startup)
  --store            plan cache directory (default plan-store)
  --threads          engine threads per plan, 0 = auto (default 0)
  --workers          HTTP worker threads (default 4)
  --verify-on-write  statically verify every fresh plan's certificate
                     before caching it (1 = on, default 0)
  --max-inflight     admission ceiling on requests being processed at
                     once (default 256)
  --queue-depth      bounded job-queue length behind the ceiling
                     (default 128)
  --push-metrics     push /metrics counters as Influx line protocol to
                     this http:// URL every XHC_PUSH_INTERVAL_MS ms
                     (default 2000)",
        ),
        "fetch" => Some(
            "xhybrid fetch --addr HOST:PORT (FILE | --hash HASH) [--m 32] [--q 7]
              [--strategy largest|best-cost] [--out FILE]

Client for a running `xhybrid serve`. With FILE, submits the X map
(text or wire format) to /v1/plan and prints the plan summary; with
--hash, fetches an already-cached plan by content address.

  --addr      daemon address (required)
  --hash      16-hex plan hash from a previous submission
  --m, --q    cancel parameters sent with FILE (defaults 32, 7)
  --strategy  split heuristic sent with FILE (default largest)
  --out       also write the wire-encoded plan to FILE",
        ),
        _ => None,
    }
}

/// A CLI failure: usage errors exit 2, runtime failures exit 1 (matching
/// the `xhc-lint` binary convention).
enum CliError {
    Usage(String),
    Runtime(String),
}

impl CliError {
    fn usage(msg: impl Into<String>) -> CliError {
        CliError::Usage(msg.into())
    }
    fn runtime(msg: impl Into<String>) -> CliError {
        CliError::Runtime(msg.into())
    }
}

type CmdResult = Result<(), CliError>;

/// Minimal flag parser: `--name value` pairs plus positional arguments.
struct Args {
    positional: Vec<String>,
    flags: Vec<(String, String)>,
}

impl Args {
    fn parse(argv: &[String]) -> Result<Args, String> {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut it = argv.iter();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                let value = it
                    .next()
                    .ok_or_else(|| format!("flag --{name} needs a value"))?;
                flags.push((name.to_string(), value.clone()));
            } else {
                positional.push(a.clone());
            }
        }
        Ok(Args { positional, flags })
    }

    fn flag(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn flag_parse<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.flag(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|e| format!("bad --{name}: {e}")),
        }
    }
}

fn load(path: &str) -> Result<XMap, CliError> {
    let file =
        File::open(path).map_err(|e| CliError::runtime(format!("cannot open {path}: {e}")))?;
    read_xmap(file).map_err(|e| CliError::runtime(format!("cannot parse {path}: {e}")))
}

fn cancel_config(args: &Args) -> Result<XCancelConfig, CliError> {
    let m: usize = args.flag_parse("m", 32).map_err(CliError::Usage)?;
    let q: usize = args.flag_parse("q", 7).map_err(CliError::Usage)?;
    if q == 0 || q >= m {
        return Err(CliError::usage(format!("need 0 < q < m, got m={m} q={q}")));
    }
    Ok(XCancelConfig::new(m, q))
}

fn cmd_gen(args: &Args) -> CmdResult {
    let profile = args.flag("profile").unwrap_or("demo");
    let scale: usize = args.flag_parse("scale", 1).map_err(CliError::Usage)?;
    let mut spec = WorkloadSpec::profile(profile)
        .ok_or_else(|| CliError::usage(format!("unknown profile `{profile}`")))?
        .scaled(scale);
    spec.seed = args
        .flag_parse("seed", spec.seed)
        .map_err(CliError::Usage)?;
    let out = args
        .flag("out")
        .ok_or_else(|| CliError::usage("gen needs --out FILE"))?;
    let xmap = spec.generate();
    let file =
        File::create(out).map_err(|e| CliError::runtime(format!("cannot create {out}: {e}")))?;
    write_xmap(file, &xmap).map_err(|e| CliError::runtime(format!("cannot write {out}: {e}")))?;
    eprintln!(
        "wrote {out}: {} cells / {} chains / {} patterns, {} X's ({:.3}%)",
        xmap.config().total_cells(),
        xmap.config().num_chains(),
        xmap.num_patterns(),
        xmap.total_x(),
        100.0 * xmap.x_density()
    );
    Ok(())
}

fn cmd_analyze(args: &Args) -> CmdResult {
    let path = args
        .positional
        .first()
        .ok_or_else(|| CliError::usage("analyze needs a FILE"))?;
    let xmap = load(path)?;
    let inter = inter_correlation_stats(&xmap);
    let intra = intra_correlation_stats(&xmap);
    println!("cells            : {}", inter.total_cells);
    println!(
        "X-capturing cells: {} ({:.2}%)",
        inter.x_cells,
        100.0 * inter.x_cells as f64 / inter.total_cells.max(1) as f64
    );
    println!(
        "total X's        : {} ({:.3}% density)",
        inter.total_x,
        100.0 * xmap.x_density()
    );
    println!(
        "90% of X's in    : {:.2}% of cells",
        100.0 * inter.cells_for_90pct
    );
    println!(
        "inter-correlation: largest identical-set group = {} cells; largest count class = {} cells x {} X's",
        inter.largest_identical_group, inter.largest_count_class, inter.largest_count_class_count
    );
    println!(
        "intra-correlation: {} of {} X-cells have an X neighbour; {} runs, longest {}{}",
        intra.x_cells_with_x_neighbour,
        intra.x_cells,
        intra.runs,
        intra.longest_run,
        match intra.mean_adjacent_jaccard {
            Some(j) => format!("; adjacent-set Jaccard {j:.2}"),
            None => String::new(),
        }
    );
    Ok(())
}

fn split_strategy(args: &Args) -> Result<xhybrid::core::SplitStrategy, CliError> {
    let raw = args.flag("strategy").unwrap_or("largest");
    parse_strategy(raw).ok_or_else(|| CliError::usage(format!("unknown strategy `{raw}`")))
}

/// Builds a full [`PlanOptions`] from the shared engine flags.
fn plan_options(args: &Args) -> Result<PlanOptions, CliError> {
    let strategy = split_strategy(args)?;
    let seed: u64 = args.flag_parse("seed", 0).map_err(CliError::Usage)?;
    let policy_raw = args.flag("policy").unwrap_or("first");
    let policy = parse_policy(policy_raw, seed)
        .ok_or_else(|| CliError::usage(format!("unknown policy `{policy_raw}`")))?;
    if args.flag("seed").is_some() && policy_raw != "seeded" {
        return Err(CliError::usage("--seed requires --policy seeded"));
    }
    let threads: usize = args.flag_parse("threads", 0).map_err(CliError::Usage)?;
    let max_rounds = match args.flag("max-rounds") {
        None => None,
        Some(v) => Some(
            v.parse()
                .map_err(|e| CliError::usage(format!("bad --max-rounds: {e}")))?,
        ),
    };
    let cost_stop = match args.flag("cost-stop").unwrap_or("1") {
        "1" => true,
        "0" => false,
        other => {
            return Err(CliError::usage(format!(
                "bad --cost-stop `{other}` (expected 0 or 1)"
            )))
        }
    };
    let backend_raw = args.flag("backend").unwrap_or("hybrid");
    let backend = BackendId::parse(backend_raw).ok_or_else(|| {
        CliError::usage(format!(
            "unknown backend `{backend_raw}` (expected hybrid, masking, canceling, superset, or xcode)"
        ))
    })?;
    Ok(PlanOptions {
        strategy,
        policy,
        threads,
        max_rounds,
        cost_stop,
        backend,
    })
}

fn cmd_partition(args: &Args) -> CmdResult {
    let path = args
        .positional
        .first()
        .ok_or_else(|| CliError::usage("partition needs a FILE"))?;
    let cancel = cancel_config(args)?;
    let strategy = split_strategy(args)?;
    let xmap = load(path)?;
    let outcome = PartitionEngine::with_options(
        cancel,
        PlanOptions {
            strategy,
            ..PlanOptions::default()
        },
    )
    .run(&xmap);
    let report = xhybrid::core::report_for_outcome(&xmap, cancel, outcome);
    println!(
        "partitions       : {} (after {} rounds)",
        report.outcome.partitions.len(),
        report.outcome.rounds.len()
    );
    println!(
        "X's              : {} masked + {} leaked = {}",
        report.outcome.masked_x(),
        report.outcome.leaked_x(),
        report.total_x
    );
    println!(
        "control bits     : {:.1} (mask {} + cancel {:.1})",
        report.proposed_bits, report.outcome.cost.masking_bits, report.outcome.cost.canceling_bits
    );
    println!(
        "vs baselines     : {:.2}x over X-masking-only, {:.2}x over X-canceling-only",
        report.impv_over_masking, report.impv_over_canceling
    );
    println!(
        "test time        : {:.3} -> {:.3} ({:.2}x)",
        report.time_canceling_only, report.time_proposed, report.time_impv
    );
    Ok(())
}

/// How many leading patterns `plan`'s cancel-session validation covers:
/// enough to exercise the masking + gauss + extraction path on every
/// workload without making the command quadratic on paper-scale inputs.
const PLAN_VALIDATE_PATTERNS: usize = 64;

/// Symbol budget of the validation session (`cells x patterns`). The
/// symbolic MISR carries one bit per symbol in every row, so its cost
/// grows with the square of the sample size; this caps the sample on
/// wide scan configurations (paper-scale maps validate only a handful of
/// patterns, which still exercises every code path).
const PLAN_VALIDATE_SYMBOLS: usize = 1 << 18;

fn cmd_plan(args: &Args) -> CmdResult {
    let cancel = cancel_config(args)?;
    let opts = plan_options(args)?;
    let trace_out = args.flag("trace");
    // Input: a FILE positional, or a generated full-size paper profile
    // (`--profile ckt-a`, optionally shrunk with `--scale N`).
    let xmap = match (args.positional.first(), args.flag("profile")) {
        (Some(_), Some(_)) => {
            return Err(CliError::usage("plan takes a FILE or --profile, not both"))
        }
        (Some(path), None) => load(path)?,
        (None, Some(profile)) => {
            let scale: usize = args.flag_parse("scale", 1).map_err(CliError::Usage)?;
            let spec = WorkloadSpec::profile(profile)
                .ok_or_else(|| CliError::usage(format!("unknown profile `{profile}`")))?
                .scaled(scale);
            let xmap = spec.generate();
            eprintln!(
                "generated {}: {} cells / {} patterns, {} X's ({:.3}%)",
                spec.name,
                xmap.config().total_cells(),
                xmap.num_patterns(),
                xmap.total_x(),
                100.0 * xmap.x_density()
            );
            xmap
        }
        (None, None) => return Err(CliError::usage("plan needs a FILE or --profile NAME")),
    };

    // Non-hybrid backends have no partition plan to validate or trace:
    // print their uniform report and stop.
    if opts.backend != BackendId::Hybrid {
        if trace_out.is_some() {
            return Err(CliError::usage("--trace requires the hybrid backend"));
        }
        let report = backend_for(opts.backend).plan(&WorkloadInput::new(&xmap, cancel), &opts);
        println!("backend          : {}", report.backend);
        println!("control bits     : {:.1}", report.control_bits);
        println!(
            "X's              : {} masked + {} leaked = {}",
            report.masked_x,
            report.leaked_x,
            report.masked_x + report.leaked_x
        );
        println!(
            "observability    : {} non-X response bits lost",
            report.lost_observability
        );
        return Ok(());
    }

    let session = if trace_out.is_some() {
        Some(
            TraceSession::begin()
                .ok_or_else(|| CliError::runtime("another trace session is already active"))?,
        )
    } else {
        None
    };

    let outcome = PartitionEngine::with_options(cancel, opts).run(&xmap);

    // Operational validation on a bounded prefix: gate the responses of
    // the first patterns through the planned masks (X's only, data bits
    // zero-filled) and run the time-multiplexed X-canceling session on
    // what leaks through.
    let config = xmap.config().clone();
    let cells = config.total_cells();
    let sample = xmap
        .num_patterns()
        .min(PLAN_VALIDATE_PATTERNS)
        .min((PLAN_VALIDATE_SYMBOLS / cells.max(1)).max(1));
    let mut masked = ResponseMatrix::filled(config.clone(), sample, Trit::Zero);
    let mut sample_leaked = 0usize;
    for p in 0..sample {
        let part = outcome
            .partitions
            .iter()
            .position(|set| set.contains(p))
            .expect("every pattern is in a partition");
        for c in 0..cells {
            if xmap.is_x(p, config.cell_at(c)) && !outcome.masks[part].masks(c) {
                masked.set(p, config.cell_at(c), Trit::X);
                sample_leaked += 1;
            }
        }
    }
    let report = CancelSession::new(config, cancel, Taps::default_for(cancel.m())).run(&masked);
    debug_assert_eq!(report.total_x, sample_leaked);

    let cost = xhybrid::core::report_for_outcome(&xmap, cancel, outcome);
    println!(
        "partitions       : {} (after {} rounds)",
        cost.outcome.partitions.len(),
        cost.outcome.rounds.len()
    );
    println!(
        "X's              : {} masked + {} leaked = {}",
        cost.outcome.masked_x(),
        cost.outcome.leaked_x(),
        cost.total_x
    );
    println!(
        "control bits     : {:.1} (mask {} + cancel {:.1})",
        cost.proposed_bits, cost.outcome.cost.masking_bits, cost.outcome.cost.canceling_bits
    );
    println!(
        "vs baselines     : {:.2}x over X-masking-only, {:.2}x over X-canceling-only",
        cost.impv_over_masking, cost.impv_over_canceling
    );
    println!(
        "validation       : first {sample} patterns -> {} halts, {} leaked X's canceled, {} control bits",
        report.halts, report.total_x, report.total_control_bits
    );

    if let Some(out) = trace_out {
        let trace = session.expect("session begun when --trace is set").finish();
        std::fs::write(out, trace.to_chrome_json())
            .map_err(|e| CliError::runtime(format!("cannot write {out}: {e}")))?;
        eprintln!(
            "wrote {out}: {} events, {} counters over {:.3} ms",
            trace.events.len(),
            trace.counters.len(),
            trace.duration_ns() as f64 / 1e6
        );
        eprint!("{}", trace.summary());
    }
    Ok(())
}

fn cmd_schedule(args: &Args) -> CmdResult {
    let path = args
        .positional
        .first()
        .ok_or_else(|| CliError::usage("schedule needs a FILE"))?;
    let cancel = cancel_config(args)?;
    let channels: usize = args.flag_parse("channels", 32).map_err(CliError::Usage)?;
    let xmap = load(path)?;
    let outcome = PartitionEngine::new(cancel).run(&xmap);
    let schedule = schedule_hybrid(
        xmap.config(),
        xmap.num_patterns(),
        &outcome,
        cancel,
        AteConfig::new(channels),
        ScheduleOptions::default(),
    );
    println!("shift cycles     : {}", schedule.shift_cycles);
    println!("capture cycles   : {}", schedule.capture_cycles);
    println!(
        "mask loads       : {} ({} reload cycles)",
        schedule.mask_loads, schedule.mask_reload_cycles
    );
    println!(
        "halts            : {} ({} extraction cycles)",
        schedule.halts, schedule.extraction_cycles
    );
    println!("total cycles     : {}", schedule.total_cycles());
    println!("normalized time  : {:.4}", schedule.normalized());
    Ok(())
}

/// `xhybrid verify`: plan + certify + independently re-check, or verify
/// existing wire artifacts against the X map.
fn cmd_verify(args: &Args) -> CmdResult {
    let path = args
        .positional
        .first()
        .ok_or_else(|| CliError::usage("verify needs a FILE"))?;
    let xmap = load(path)?;

    if let Some(plan_path) = args.flag("plan") {
        // Artifact mode: the certificate carries its own (m, q).
        let cert_path = args
            .flag("cert")
            .ok_or_else(|| CliError::usage("--plan requires --cert FILE"))?;
        let plan_bytes = std::fs::read(plan_path)
            .map_err(|e| CliError::runtime(format!("cannot read {plan_path}: {e}")))?;
        let cert_bytes = std::fs::read(cert_path)
            .map_err(|e| CliError::runtime(format!("cannot read {cert_path}: {e}")))?;
        let cert = xhybrid::wire::decode_certificate(&cert_bytes)
            .map_err(|e| CliError::runtime(format!("cannot decode {cert_path}: {e}")))?;
        let (outcome, num_patterns) = decode_plan(&plan_bytes)
            .map_err(|e| CliError::runtime(format!("cannot decode {plan_path}: {e}")))?;
        let cancel = XCancelConfig::new(cert.m, cert.q);
        let started = std::time::Instant::now();
        xhybrid::verify::check(&cert, &outcome, &plan_bytes, &xmap, cancel)
            .map_err(|e| CliError::runtime(format!("certificate verification FAILED: {e}")))?;
        let verify_ns = started.elapsed().as_nanos();
        println!(
            "verified         : {} partitions over {} patterns, m={} q={}",
            cert.num_partitions, num_patterns, cert.m, cert.q
        );
        println!("verify time      : {:.3} ms", verify_ns as f64 / 1e6);
        return Ok(());
    }

    let cancel = cancel_config(args)?;
    let opts = plan_options(args)?;
    if opts.backend != BackendId::Hybrid {
        return Err(CliError::usage(
            "verify certifies hybrid partition plans; --backend belongs to `plan`",
        ));
    }
    let plan_started = std::time::Instant::now();
    let outcome = PartitionEngine::with_options(cancel, opts).run(&xmap);
    let plan_ns = plan_started.elapsed().as_nanos();
    let plan_bytes = xhybrid::wire::encode_plan(&outcome, xmap.num_patterns());
    let cert = xhybrid::verify::certify_plan(&xmap, cancel, &outcome, &plan_bytes, None);
    let verify_started = std::time::Instant::now();
    let checked = xhybrid::verify::check(&cert, &outcome, &plan_bytes, &xmap, cancel);
    let verify_ns = verify_started.elapsed().as_nanos();
    println!(
        "plan             : {} partitions over {} patterns (after {} rounds)",
        outcome.partitions.len(),
        xmap.num_patterns(),
        outcome.rounds.len()
    );
    println!(
        "certificate      : mask {} + cancel {:.1} control bits, {} masked + {} leaked X's",
        cert.mask_bits as u128 * cert.num_partitions as u128,
        cert.partitions.iter().map(|p| p.cancel_bits).sum::<f64>(),
        cert.partitions.iter().map(|p| p.masked_x).sum::<usize>(),
        cert.partitions.iter().map(|p| p.leaked_x).sum::<usize>(),
    );
    println!(
        "plan time        : {:.3} ms, verify time {:.3} ms ({:.1}% of plan)",
        plan_ns as f64 / 1e6,
        verify_ns as f64 / 1e6,
        100.0 * verify_ns as f64 / plan_ns.max(1) as f64
    );
    if let Some(out) = args.flag("plan-out") {
        std::fs::write(out, &plan_bytes)
            .map_err(|e| CliError::runtime(format!("cannot write {out}: {e}")))?;
        eprintln!("wrote {out}: {} bytes", plan_bytes.len());
    }
    if let Some(out) = args.flag("cert-out") {
        let cert_bytes = xhybrid::wire::encode_certificate(&cert);
        std::fs::write(out, &cert_bytes)
            .map_err(|e| CliError::runtime(format!("cannot write {out}: {e}")))?;
        eprintln!("wrote {out}: {} bytes", cert_bytes.len());
    }
    checked.map_err(|e| CliError::runtime(format!("certificate verification FAILED: {e}")))
}

fn cmd_serve(args: &Args) -> CmdResult {
    let addr = args.flag("addr").unwrap_or("127.0.0.1:7878");
    let store = args.flag("store").unwrap_or("plan-store");
    let threads: usize = args.flag_parse("threads", 0).map_err(CliError::Usage)?;
    let workers: usize = args.flag_parse("workers", 4).map_err(CliError::Usage)?;
    let verify_on_write = match args.flag("verify-on-write").unwrap_or("0") {
        "1" => true,
        "0" => false,
        other => {
            return Err(CliError::usage(format!(
                "bad --verify-on-write `{other}` (expected 0 or 1)"
            )))
        }
    };
    let max_inflight: usize = args
        .flag_parse("max-inflight", 256)
        .map_err(CliError::Usage)?;
    let queue_depth: usize = args
        .flag_parse("queue-depth", 128)
        .map_err(CliError::Usage)?;
    let mut config = ServerConfig::new(Path::new(store))
        .with_threads(threads)
        .with_workers(workers)
        .with_verify_on_write(verify_on_write)
        .with_max_inflight(max_inflight)
        .with_queue_depth(queue_depth);
    if let Some(url) = args.flag("push-metrics") {
        config = config.with_push_metrics(url);
    }
    let server = Server::bind(addr, config)
        .map_err(|e| CliError::runtime(format!("cannot bind {addr}: {e}")))?;
    println!("listening on {}", server.local_addr());
    std::io::stdout()
        .flush()
        .map_err(|e| CliError::runtime(e.to_string()))?;
    server
        .run()
        .map_err(|e| CliError::runtime(format!("server failed: {e}")))
}

fn cmd_fetch(args: &Args) -> CmdResult {
    let addr = args
        .flag("addr")
        .ok_or_else(|| CliError::usage("fetch needs --addr HOST:PORT"))?;
    let response = if let Some(hex) = args.flag("hash") {
        if parse_hash_hex(hex).is_none() {
            return Err(CliError::usage(format!(
                "`{hex}` is not a 16-hex plan hash"
            )));
        }
        client::get(addr, &format!("/v1/plan/{hex}"))
            .map_err(|e| CliError::runtime(format!("cannot reach {addr}: {e}")))?
    } else {
        let path = args
            .positional
            .first()
            .ok_or_else(|| CliError::usage("fetch needs a FILE or --hash HASH"))?;
        let body = std::fs::read(path)
            .map_err(|e| CliError::runtime(format!("cannot read {path}: {e}")))?;
        let m: usize = args.flag_parse("m", 32).map_err(CliError::Usage)?;
        let q: usize = args.flag_parse("q", 7).map_err(CliError::Usage)?;
        let strategy = args.flag("strategy").unwrap_or("largest");
        if parse_strategy(strategy).is_none() {
            return Err(CliError::usage(format!("unknown strategy `{strategy}`")));
        }
        let content_type = if peek_kind(&body).is_ok() {
            "application/octet-stream"
        } else {
            "text/plain"
        };
        client::post(
            addr,
            &format!("/v1/plan?m={m}&q={q}&strategy={strategy}"),
            content_type,
            &body,
        )
        .map_err(|e| CliError::runtime(format!("cannot reach {addr}: {e}")))?
    };

    if response.status != 200 {
        return Err(CliError::runtime(format!(
            "daemon answered {}: {}",
            response.status,
            response.body_text().trim_end()
        )));
    }
    let (outcome, num_patterns) = decode_plan(&response.body)
        .map_err(|e| CliError::runtime(format!("daemon sent an undecodable plan: {e}")))?;
    if let Some(hash) = response.header("x-xhc-plan-hash") {
        println!("plan hash        : {hash}");
    }
    if let Some(cache) = response.header("x-xhc-cache") {
        println!("cache            : {cache}");
    }
    println!(
        "partitions       : {} over {} patterns (after {} rounds)",
        outcome.partitions.len(),
        num_patterns,
        outcome.rounds.len()
    );
    println!(
        "control bits     : mask {} + cancel {:.1}",
        outcome.cost.masking_bits, outcome.cost.canceling_bits
    );
    println!(
        "X's              : {} masked + {} leaked",
        outcome.cost.masked_x, outcome.cost.leaked_x
    );
    if let Some(out) = args.flag("out") {
        std::fs::write(out, &response.body)
            .map_err(|e| CliError::runtime(format!("cannot write {out}: {e}")))?;
        let key = response.header("x-xhc-plan-hash").unwrap_or("").to_string();
        eprintln!(
            "wrote {out}: {} bytes{}",
            response.body.len(),
            if key.is_empty() {
                String::new()
            } else {
                format!(" ({key})")
            }
        );
    }
    Ok(())
}

fn run() -> CmdResult {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        return Err(CliError::usage(usage()));
    };
    if matches!(cmd.as_str(), "help" | "--help" | "-h") {
        println!("{}", usage());
        return Ok(());
    }
    if rest.iter().any(|a| a == "--help" || a == "-h") {
        match command_help(cmd) {
            Some(help) => {
                println!("{help}");
                return Ok(());
            }
            None => {
                return Err(CliError::usage(format!(
                    "unknown command `{cmd}`\n{}",
                    usage()
                )))
            }
        }
    }
    let args = Args::parse(rest).map_err(CliError::Usage)?;
    match cmd.as_str() {
        "gen" => cmd_gen(&args),
        "analyze" => cmd_analyze(&args),
        "partition" => cmd_partition(&args),
        "plan" => cmd_plan(&args),
        "schedule" => cmd_schedule(&args),
        "verify" => cmd_verify(&args),
        "serve" => cmd_serve(&args),
        "fetch" => cmd_fetch(&args),
        other => Err(CliError::usage(format!(
            "unknown command `{other}`\n{}",
            usage()
        ))),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Runtime(msg)) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
        Err(CliError::Usage(msg)) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_parse_flags_and_positional() {
        let argv: Vec<String> = ["file.xmap", "--m", "16", "--q", "3"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let args = Args::parse(&argv).unwrap();
        assert_eq!(args.positional, vec!["file.xmap"]);
        assert_eq!(args.flag("m"), Some("16"));
        assert_eq!(args.flag_parse::<usize>("q", 7).unwrap(), 3);
        assert_eq!(args.flag_parse::<usize>("channels", 32).unwrap(), 32);
    }

    #[test]
    fn args_missing_value_is_error() {
        let argv = vec!["--m".to_string()];
        assert!(Args::parse(&argv).is_err());
    }

    #[test]
    fn cancel_config_validates() {
        let argv: Vec<String> = ["--m", "8", "--q", "8"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let args = Args::parse(&argv).unwrap();
        assert!(matches!(cancel_config(&args), Err(CliError::Usage(_))));
    }

    #[test]
    fn every_command_has_help() {
        for cmd in [
            "gen",
            "analyze",
            "partition",
            "plan",
            "schedule",
            "verify",
            "serve",
            "fetch",
        ] {
            assert!(command_help(cmd).is_some(), "{cmd} lacks help text");
        }
        assert!(command_help("bogus").is_none());
    }
}
